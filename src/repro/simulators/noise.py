"""Device noise models.

The paper's real-machine experiment (Fig. 11) is reproduced with a
Monte-Carlo Pauli noise model built from backend calibration data:

* depolarizing error after every one-qubit gate (rate per qubit),
* depolarizing error after every two-qubit gate (rate per coupling edge),
* classical readout bit-flip errors at measurement.

Rates follow the magnitudes the paper quotes for ``ibmq_16_melbourne``
(Sec. IV): one-qubit error ``1e-4 .. 1e-3``, CNOT error around ``1e-2``
or worse, readout error a few percent.
"""

from __future__ import annotations

import dataclasses

__all__ = ["NoiseModel"]


@dataclasses.dataclass
class NoiseModel:
    """Pauli/readout noise rates keyed by qubit and coupling edge.

    Attributes:
        one_qubit_error: depolarizing probability after a 1q gate, per qubit.
        two_qubit_error: depolarizing probability after a 2q gate, per
            *sorted* qubit pair.
        readout_error: per-qubit tuple ``(p_flip_given_0, p_flip_given_1)``.
        default_one_qubit_error: fallback for unlisted qubits.
        default_two_qubit_error: fallback for unlisted pairs.
        default_readout_error: fallback readout flip probabilities.
    """

    one_qubit_error: dict[int, float] = dataclasses.field(default_factory=dict)
    two_qubit_error: dict[tuple[int, int], float] = dataclasses.field(default_factory=dict)
    readout_error: dict[int, tuple[float, float]] = dataclasses.field(default_factory=dict)
    default_one_qubit_error: float = 0.0
    default_two_qubit_error: float = 0.0
    default_readout_error: tuple[float, float] = (0.0, 0.0)

    def gate_error(self, qubits: tuple[int, ...]) -> float:
        """Depolarizing probability for a gate on ``qubits``."""
        if len(qubits) == 1:
            return self.one_qubit_error.get(qubits[0], self.default_one_qubit_error)
        if len(qubits) == 2:
            key = (min(qubits), max(qubits))
            return self.two_qubit_error.get(key, self.default_two_qubit_error)
        # multi-qubit primitives should have been decomposed; be conservative
        return self.default_two_qubit_error * (len(qubits) - 1)

    def readout_flip_probabilities(self, qubit: int) -> tuple[float, float]:
        return self.readout_error.get(qubit, self.default_readout_error)

    @classmethod
    def from_backend(cls, backend) -> "NoiseModel":
        """Build a model from a :class:`repro.backends.FakeBackend`."""
        properties = backend.properties
        return cls(
            one_qubit_error=dict(properties.single_qubit_error),
            two_qubit_error=dict(properties.two_qubit_error),
            readout_error=dict(properties.readout_error),
            default_one_qubit_error=properties.default_single_qubit_error,
            default_two_qubit_error=properties.default_two_qubit_error,
            default_readout_error=properties.default_readout_error,
        )

    @classmethod
    def uniform(
        cls,
        one_qubit: float = 1e-3,
        two_qubit: float = 2e-2,
        readout: float = 3e-2,
    ) -> "NoiseModel":
        """A homogeneous model, handy for tests and quick studies."""
        return cls(
            default_one_qubit_error=one_qubit,
            default_two_qubit_error=two_qubit,
            default_readout_error=(readout, readout),
        )
