"""Monte-Carlo (trajectory) noisy simulation.

Each shot evolves a statevector, inserting a uniformly random non-identity
Pauli on the touched qubits after each gate with the model's depolarizing
probability, and flipping measured bits with the readout error.  This is
the standard stochastic unravelling of the depolarizing channel and is how
the repo substitutes for the paper's runs on real IBM machines (Fig. 11);
see DESIGN.md for the substitution rationale.

Trajectories are backend-resident: gate matrices (and the Pauli table)
upload once per :meth:`NoisySimulator.run` call, every shot's state lives
on the active array backend, and only the scalar branch probabilities of
measurements/resets sync to the host (inherent to sampling).  The
classical outcome of each shot is a host integer, so no per-shot array
download happens at all.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.linalg.backend import get_backend
from repro.linalg.random import as_rng
from repro.simulators.counts import Counts
from repro.simulators.noise import NoiseModel
from repro.simulators.statevector import apply_gate_to_state

__all__ = ["NoisySimulator"]

_PAULIS = [
    np.array([[1, 0], [0, 1]], dtype=complex),
    np.array([[0, 1], [1, 0]], dtype=complex),
    np.array([[0, -1j], [1j, 0]], dtype=complex),
    np.array([[1, 0], [0, -1]], dtype=complex),
]


class NoisySimulator:
    """Trajectory sampler over a :class:`NoiseModel`."""

    def __init__(self, noise_model: NoiseModel, seed: int | np.random.Generator | None = None):
        self.noise_model = noise_model
        self._rng = as_rng(seed)

    def run(self, circuit: QuantumCircuit, shots: int = 1024) -> Counts:
        """Sample ``shots`` noisy trajectories of ``circuit``."""
        backend = get_backend()
        compiled = self._precompile(circuit, backend)
        paulis = [backend.asarray(p, dtype=complex) for p in _PAULIS]
        counts: dict[str, int] = {}
        num_clbits = circuit.num_clbits
        for _ in range(shots):
            key = self._one_shot(
                compiled, circuit.num_qubits, num_clbits, backend, paulis
            )
            counts[key] = counts.get(key, 0) + 1
        return Counts(counts, num_clbits=num_clbits)

    # ------------------------------------------------------------------

    def _precompile(self, circuit: QuantumCircuit, backend):
        """Cache gate matrices and error rates for the trajectory loop.

        Matrices upload to the backend here, once per :meth:`run` call,
        so the per-shot loop never moves a matrix to the device again.
        """
        steps = []
        for instruction in circuit.data:
            operation = instruction.operation
            if operation.is_directive:
                continue
            if operation.name == "measure":
                steps.append(("measure", instruction.qubits[0], instruction.clbits[0]))
                continue
            if operation.name == "reset":
                steps.append(("reset", instruction.qubits[0], None))
                continue
            if not operation.is_gate():
                raise ValueError(f"cannot simulate {operation.name!r}")
            matrix = backend.asarray(operation.to_matrix(), dtype=complex)
            error = self.noise_model.gate_error(instruction.qubits)
            steps.append(("gate", (matrix, instruction.qubits), error))
        return steps

    def _one_shot(self, steps, num_qubits: int, num_clbits: int, backend, paulis) -> str:
        xp = backend.xp
        state = xp.zeros(2**num_qubits, dtype=complex)
        state[0] = 1.0
        clbits = 0
        for kind, payload, extra in steps:
            if kind == "gate":
                matrix, qubits = payload
                state = apply_gate_to_state(state, matrix, qubits, num_qubits)
                if extra > 0.0 and self._rng.random() < extra:
                    state = self._apply_random_pauli(state, qubits, num_qubits, paulis)
            elif kind == "measure":
                outcome, state = self._measure(state, payload, num_qubits)
                flip_given_0, flip_given_1 = self.noise_model.readout_flip_probabilities(
                    payload
                )
                flip_probability = flip_given_1 if outcome else flip_given_0
                if flip_probability > 0.0 and self._rng.random() < flip_probability:
                    outcome ^= 1
                clbits = (clbits & ~(1 << extra)) | (outcome << extra)
            else:  # reset
                outcome, state = self._measure(state, payload, num_qubits)
                if outcome:
                    state = apply_gate_to_state(state, paulis[1], (payload,), num_qubits)
        return format(clbits, f"0{num_clbits}b")

    def _apply_random_pauli(self, state, qubits, num_qubits, paulis):
        """Uniformly random non-identity Pauli on the touched qubits."""
        size = 4 ** len(qubits)
        choice = int(self._rng.integers(1, size))
        for position, qubit in enumerate(qubits):
            index = (choice >> (2 * position)) & 3
            if index:
                state = apply_gate_to_state(state, paulis[index], (qubit,), num_qubits)
        return state

    def _measure(self, state, qubit, num_qubits):
        xp = get_backend().xp
        indices = xp.arange(len(state))
        mask = (indices >> qubit) & 1
        # scalar branch-probability sync: inherent to trajectory sampling
        prob_one = float(xp.sum(xp.abs(state[mask == 1]) ** 2))
        outcome = int(self._rng.random() < prob_one)
        collapsed = xp.where(mask == outcome, state, 0.0)
        norm = float(xp.linalg.norm(collapsed))
        if norm < 1e-12:  # numerically impossible branch; resample other way
            outcome ^= 1
            collapsed = xp.where(mask == outcome, state, 0.0)
            norm = float(xp.linalg.norm(collapsed))
        return outcome, collapsed / norm
