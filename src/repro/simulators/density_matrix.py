"""Exact density-matrix simulation of noisy circuits.

Evolves the full density matrix through the same depolarizing + readout
noise model the Monte-Carlo sampler unravels, giving *exact* outcome
probabilities.  Cost is ``4^n`` so this is for small (<= ~8 qubit) circuits;
it exists to validate the trajectory sampler (the Fig. 11 substitute) and
for noise studies where sampling error matters.

The density matrix is backend-resident (:mod:`repro.linalg.backend`):
``rho`` lives on the active array backend for the whole evolution --
embedded gate/Pauli/Kraus operators are built on the host (cheap, cached)
and uploaded, the sandwich products run on-device, and the diagonal
crosses back in one ``asnumpy()`` hop before the (host-side) readout
fold.  The embedded-Pauli cache is keyed on the backend name and flushed
on every :func:`~repro.linalg.backend.set_backend`, so switching backends
mid-process can never hand one backend's arrays to another's matmul.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.linalg.backend import get_backend, register_backend_listener
from repro.simulators.noise import NoiseModel

__all__ = ["DensityMatrixSimulator"]

_PAULIS = [
    np.eye(2, dtype=complex),
    np.array([[0, 1], [1, 0]], dtype=complex),
    np.array([[0, -1j], [1j, 0]], dtype=complex),
    np.array([[1, 0], [0, -1]], dtype=complex),
]

#: Reset Kraus factors (shared, read-only): |0><0| projector and |0><1|.
_PROJ_ZERO = np.array([[1, 0], [0, 0]], dtype=complex)
_LOWER = np.array([[0, 1], [0, 0]], dtype=complex)


@lru_cache(maxsize=4096)
def _embedded_pauli(
    index: int, qargs: tuple[int, ...], num_qubits: int, backend_name: str = "numpy"
):
    """Full-register Pauli-string tensor, cached per ``(index, qargs, n)``
    *and per backend*.

    The depolarizing channel hits the same handful of Pauli strings on
    every noisy gate of a circuit (and again on every circuit of a sweep),
    so the ``np.kron`` build + embedding + device upload happens once per
    distinct string instead of once per application.  The cache key
    includes the backend name -- and :func:`set_backend` flushes the whole
    cache -- so entries can never alias across backends (a NumPy-keyed
    array handed to a CuPy matmul, or a stale device array surviving a
    backend switch).  NumPy-backend arrays are returned read-only.
    """
    from repro.circuit.matrix_utils import embed_gate

    pauli = np.array([[1.0]], dtype=complex)
    for position in range(len(qargs) - 1, -1, -1):
        # deliberate host-side staging: the 2x2 Pauli factors live on the
        # host and the finished operator is uploaded once per cache entry
        # (TODO: move to backend.kron if a device-side builder ever pays)
        pauli = np.kron(pauli, _PAULIS[(index >> (2 * position)) & 3])  # repro-lint: ignore[RES001]
    full = embed_gate(pauli, qargs, num_qubits)
    if backend_name == "numpy":
        full.setflags(write=False)
        return full
    return get_backend().asarray(full, dtype=complex)


@register_backend_listener
def _flush_pauli_cache(_backend) -> None:
    _embedded_pauli.cache_clear()


class DensityMatrixSimulator:
    """Exact mixed-state evolution under a :class:`NoiseModel`."""

    def __init__(self, noise_model: NoiseModel | None = None):
        self.noise_model = noise_model or NoiseModel()

    def probabilities(self, circuit: QuantumCircuit) -> dict[str, float]:
        """Exact outcome distribution over the classical bits.

        Supports terminal measurements only (no mid-circuit collapse).
        """
        num_qubits = circuit.num_qubits
        if num_qubits > 12:
            raise ValueError(
                f"{num_qubits}-qubit density matrix would need "
                f"4^{num_qubits} entries; compact the circuit first"
            )
        backend = get_backend()
        dim = 2**num_qubits
        rho = backend.xp.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0

        measures: list[tuple[int, int]] = []
        for instruction in circuit.data:
            operation = instruction.operation
            if operation.is_directive:
                continue
            name = operation.name
            if name == "measure":
                measures.append((instruction.qubits[0], instruction.clbits[0]))
                continue
            if measures:
                raise ValueError("mid-circuit measurement is not supported")
            if name == "reset":
                rho = self._reset(rho, instruction.qubits[0], num_qubits, backend)
                continue
            if not operation.is_gate():
                raise ValueError(f"cannot simulate {name!r}")
            rho = self._apply_unitary(
                rho, operation.to_matrix(), instruction.qubits, num_qubits, backend
            )
            error = self.noise_model.gate_error(instruction.qubits)
            if error > 0.0:
                rho = self._depolarize(
                    rho, instruction.qubits, num_qubits, error, backend
                )

        return self._measure_distribution(
            rho, measures, circuit.num_clbits, num_qubits, backend
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _embed(matrix: np.ndarray, qargs, num_qubits, backend):
        from repro.circuit.matrix_utils import embed_gate

        return backend.asarray(embed_gate(matrix, qargs, num_qubits), dtype=complex)

    def _apply_unitary(self, rho, matrix, qargs, num_qubits, backend):
        full = self._embed(matrix, qargs, num_qubits, backend)
        return full @ rho @ full.conj().T

    def _depolarize(self, rho, qargs, num_qubits, probability, backend):
        """k-qubit depolarizing channel: mix in uniform non-identity Paulis."""
        k = len(qargs)
        count = 4**k - 1
        mixed = (1 - probability) * rho
        share = probability / count
        for index in range(1, 4**k):
            full = _embedded_pauli(index, tuple(qargs), num_qubits, backend.name)
            mixed = mixed + share * (full @ rho @ full.conj().T)
        return mixed

    def _reset(self, rho, qubit, num_qubits, backend):
        p0 = self._embed(_PROJ_ZERO, (qubit,), num_qubits, backend)
        k1 = self._embed(_LOWER, (qubit,), num_qubits, backend)
        return p0 @ rho @ p0.conj().T + k1 @ rho @ k1.conj().T

    def _measure_distribution(self, rho, measures, num_clbits, num_qubits, backend):
        xp = backend.xp
        # the one boundary hop: only the diagonal crosses to the host
        state_probs = backend.asnumpy(xp.real(xp.diag(rho))).clip(min=0.0)
        state_probs /= state_probs.sum()
        distribution: dict[str, float] = {}
        flip = {
            qubit: self.noise_model.readout_flip_probabilities(qubit)
            for qubit, _ in measures
        }
        for outcome, probability in enumerate(state_probs):
            if probability < 1e-15:
                continue
            # fold readout errors analytically over the measured bits
            bits_acc: dict[int, float] = {0: float(probability)}
            for qubit, clbit in measures:
                flip0, flip1 = flip[qubit]
                value = (outcome >> qubit) & 1
                stay = 1 - (flip1 if value else flip0)
                swap = flip1 if value else flip0
                updated: dict[int, float] = {}
                for bits, weight in bits_acc.items():
                    kept = bits | (value << clbit)
                    flipped = bits | ((value ^ 1) << clbit)
                    updated[kept] = updated.get(kept, 0.0) + weight * stay
                    updated[flipped] = updated.get(flipped, 0.0) + weight * swap
                bits_acc = updated
            for bits, weight in bits_acc.items():
                key = format(bits, f"0{num_clbits}b")
                distribution[key] = distribution.get(key, 0.0) + weight
        return distribution
