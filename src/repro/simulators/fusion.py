"""Gate-fusion pre-step shared by the simulators.

:func:`compile_program` lowers a circuit into a flat list of simulator
steps, folding maximal runs of gates confined to one qubit (or one qubit
pair) into single fused matrices before anything touches the state.  The
run collection mirrors ``ConsolidateBlocks``: one-qubit runs attach to a
two-qubit run when a gate entangles their qubits, and measurements,
resets, classically-conditioned gates and 3+-qubit gates fence the qubits
they touch.  All fused products are computed in batched stacked-operand
reductions (:mod:`repro.linalg.batch`) -- one call for every one-qubit
run, one for every two-qubit run -- rather than one matmul per gate.

Applying a fused ``4x4`` to the state costs one ``apply_gate_to_state``
instead of one per gate, which is where the win comes from: the per-gate
transpose/reshape bookkeeping dominates matrix arithmetic at these sizes.

Gate matrices resolve through :meth:`AnalysisCache.matrices`, so
parameter-free standard gates come from the immutable module-level table
in :mod:`repro.gates.matrices` and repeated parameterised gates are
constructed once per program, not once per instruction.

Fused products use the log-depth pairwise reduction: a fused trajectory
equals the serial one up to floating-point associativity (exact in exact
arithmetic), which the simulator tests bound at ``1e-12``.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.linalg.batch import chain_products, two_qubit_chain_unitaries
from repro.transpiler.cache import AnalysisCache

__all__ = ["FusedProgram", "compile_program"]


class _Run:
    """A growing run of gates confined to ``qubits`` (one qubit or a pair)."""

    __slots__ = ("qubits", "items", "matrix")

    def __init__(self, qubits: tuple[int, ...]):
        self.qubits = qubits
        self.items: list[tuple[int, tuple[int, ...]]] = []  # (op index, qargs)
        self.matrix: np.ndarray | None = None


class FusedProgram:
    """A circuit lowered to simulator steps.

    ``steps`` entries are ``(kind, a, b)`` tuples:

    * ``("unitary", matrix, qargs)`` -- apply ``matrix`` to ``qargs``,
    * ``("measure", qubit, clbit)`` -- measure ``qubit`` into ``clbit``,
    * ``("reset", qubit, None)`` -- reset ``qubit`` to ``|0>``,
    * ``("other", operation, qargs)`` -- anything the consumer must
      reject (or handle) itself; ``operation`` is the original instruction.
    """

    __slots__ = ("num_qubits", "num_clbits", "global_phase", "steps",
                 "num_gates", "num_unitaries", "_staged")

    def __init__(self, num_qubits: int, num_clbits: int, global_phase: float):
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.global_phase = global_phase
        self.steps: list[tuple] = []
        #: gate instructions lowered (fused or not)
        self.num_gates = 0
        #: unitary steps emitted -- ``num_gates - num_unitaries`` gates
        #: were folded away by fusion
        self.num_unitaries = 0
        #: per-backend staged step list: ``(backend, steps)`` or ``None``
        self._staged: tuple | None = None

    def staged(self, backend) -> list[tuple]:
        """The step list with unitary matrices resident on ``backend``.

        On the NumPy backend this is :attr:`steps` itself (host matrices
        already live in the right place).  On any other backend every
        unitary's matrix is uploaded **once** -- here, not inside the
        evolve loop -- and the staged list is cached against the backend
        object, so repeated shots/trajectories over one program re-use
        the device-side matrix table instead of re-uploading per gate.
        A backend switch (a different object from ``get_backend()``)
        invalidates the cache by identity, never by name.
        """
        if backend.name == "numpy":
            return self.steps
        cached = self._staged
        if cached is not None and cached[0] is backend:
            return cached[1]
        staged = [
            ("unitary", backend.asarray(matrix, dtype=complex), qargs)
            if kind == "unitary"
            else (kind, matrix, qargs)
            for kind, matrix, qargs in self.steps
        ]
        self._staged = (backend, staged)
        return staged


def compile_program(
    circuit: QuantumCircuit,
    fuse: bool = True,
    cache: AnalysisCache | None = None,
) -> FusedProgram:
    """Lower ``circuit`` into a :class:`FusedProgram`.

    With ``fuse=False`` every gate becomes its own unitary step (matrices
    still resolve through the cache); directives are dropped either way.
    """
    if cache is None:
        cache = AnalysisCache()
    program = FusedProgram(circuit.num_qubits, circuit.num_clbits, circuit.global_phase)

    # Phase 1: scan into an ordered event list; runs collect gate indices
    # only, no matrix work happens here.
    events: list[tuple] = []
    gate_ops: list = []
    pending_1q: dict[int, _Run] = {}
    pair_of: dict[int, _Run] = {}

    def flush_pending(qubit: int) -> None:
        run = pending_1q.pop(qubit, None)
        if run is not None:
            events.append(("run", run, None))

    def flush_pair(run: _Run) -> None:
        for qubit in run.qubits:
            pair_of.pop(qubit, None)
        events.append(("run", run, None))

    def flush_qubit(qubit: int) -> None:
        run = pair_of.get(qubit)
        if run is not None:
            flush_pair(run)
        flush_pending(qubit)

    for instruction in circuit.data:
        operation = instruction.operation
        if operation.is_directive:
            continue
        name = operation.name
        if name == "measure":
            qubit = instruction.qubits[0]
            flush_qubit(qubit)
            events.append(("measure", qubit, instruction.clbits[0]))
            continue
        if name == "reset":
            qubit = instruction.qubits[0]
            flush_qubit(qubit)
            events.append(("reset", qubit, None))
            continue
        if not operation.is_gate():
            for qubit in instruction.qubits:
                flush_qubit(qubit)
            events.append(("other", operation, instruction.qubits))
            continue
        qargs = instruction.qubits
        program.num_gates += 1
        op_index = len(gate_ops)
        gate_ops.append(operation)
        if not fuse or len(qargs) > 2 or instruction.clbits:
            for qubit in qargs:
                flush_qubit(qubit)
            events.append(("gate", op_index, qargs))
            continue
        if len(qargs) == 1:
            qubit = qargs[0]
            run = pair_of.get(qubit) or pending_1q.get(qubit)
            if run is None:
                run = _Run(qargs)
                pending_1q[qubit] = run
            run.items.append((op_index, qargs))
            continue
        a, b = qargs
        pair = (a, b) if a < b else (b, a)
        run = pair_of.get(a)
        if run is not None and run is pair_of.get(b) and run.qubits == pair:
            run.items.append((op_index, qargs))
            continue
        for qubit in qargs:
            held = pair_of.get(qubit)
            if held is not None:
                flush_pair(held)
        run = _Run(pair)
        for qubit in pair:
            held_1q = pending_1q.pop(qubit, None)
            if held_1q is not None:
                run.items.extend(held_1q.items)
            pair_of[qubit] = run
        run.items.append((op_index, qargs))

    remaining: list[_Run] = []
    for run in pair_of.values():
        if run not in remaining:
            remaining.append(run)
    for run in remaining:
        flush_pair(run)
    for qubit in sorted(pending_1q):
        flush_pending(qubit)

    # Phase 2: every gate matrix in one bulk cache lookup, every fused
    # product in one batched reduction per arity.
    matrices = cache.matrices(gate_ops)
    runs_1q: list[_Run] = []
    runs_2q: list[_Run] = []
    for event in events:
        if event[0] != "run":
            continue
        run = event[1]
        if len(run.items) == 1:
            run.matrix = matrices[run.items[0][0]]
        elif len(run.qubits) == 1:
            runs_1q.append(run)
        else:
            runs_2q.append(run)
    if runs_1q:
        products = chain_products(
            [[matrices[index] for index, _ in run.items] for run in runs_1q],
            2,
            reduction="pairwise",
        )
        for run, product in zip(runs_1q, products):
            run.matrix = product
    if runs_2q:
        chains = []
        for run in runs_2q:
            low, high = run.qubits
            wire_of = {low: 0, high: 1}
            chains.append(
                [
                    (matrices[index], tuple(wire_of[q] for q in qargs))
                    for index, qargs in run.items
                ]
            )
        products = two_qubit_chain_unitaries(chains, reduction="pairwise")
        for run, product in zip(runs_2q, products):
            run.matrix = product

    for kind, a, b in events:
        if kind == "gate":
            program.num_unitaries += 1
            program.steps.append(("unitary", matrices[a], b))
        elif kind == "run":
            program.num_unitaries += 1
            qargs = a.items[0][1] if len(a.items) == 1 else a.qubits
            program.steps.append(("unitary", a.matrix, qargs))
        else:
            program.steps.append((kind, a, b))
    return program
