"""Exact statevector simulation.

States are little-endian: bit ``k`` of a basis index is circuit qubit ``k``.
The simulator supports every gate in the library (through ``to_matrix``),
plus measurement (with collapse), reset, and directives (skipped).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.linalg.random import as_rng

__all__ = ["StatevectorSimulator", "simulate_statevector", "apply_gate_to_state"]


def apply_gate_to_state(
    state: np.ndarray, matrix: np.ndarray, qargs: tuple[int, ...], num_qubits: int
) -> np.ndarray:
    """Apply a k-qubit gate matrix to ``state`` on the given qubits.

    Implementation: permute the target qubits into the low bits, reshape to
    ``(2^(n-k), 2^k)``, right-multiply by the transposed matrix, and undo
    the permutation.
    """
    k = len(qargs)
    if matrix.shape != (2**k, 2**k):
        raise ValueError("gate matrix does not match the number of qubits")
    tensor = state.reshape([2] * num_qubits)
    # tensor axis i corresponds to qubit (num_qubits - 1 - i)
    axis_of = lambda q: num_qubits - 1 - q  # noqa: E731 - tiny local helper
    target_axes = [axis_of(q) for q in qargs]
    rest_axes = [ax for ax in range(num_qubits) if ax not in target_axes]
    # order targets so that the *last* axis is qargs[0] (bit 0 of the gate)
    ordered_targets = [axis_of(q) for q in reversed(qargs)]
    permuted = np.transpose(tensor, rest_axes + ordered_targets)
    flattened = permuted.reshape(-1, 2**k)
    updated = flattened @ matrix.T
    updated = updated.reshape([2] * num_qubits)
    # invert the permutation
    inverse = np.argsort(rest_axes + ordered_targets)
    return np.transpose(updated, inverse).reshape(-1)


class StatevectorSimulator:
    """Runs circuits on exact statevectors.

    Measurements collapse the state and write classical bits; use
    :meth:`run` for a single trajectory or :meth:`statevector` for the
    final state of a measurement-free circuit.
    """

    def __init__(self, seed: int | np.random.Generator | None = None):
        self._rng = as_rng(seed)

    def statevector(
        self, circuit: QuantumCircuit, initial_state: np.ndarray | None = None
    ) -> np.ndarray:
        """Final statevector (measurement-free circuits only)."""
        state, _ = self._evolve(circuit, initial_state, allow_measure=False)
        return state

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        initial_state: np.ndarray | None = None,
    ) -> dict[str, int]:
        """Sample measurement outcomes over ``shots`` trajectories.

        For circuits whose measurements are all terminal the sampling is done
        from the final distribution in one pass; otherwise each shot runs a
        full collapsing trajectory.
        """
        from repro.simulators.counts import Counts

        if self._measurements_are_terminal(circuit):
            state, measured = self._evolve(
                circuit, initial_state, allow_measure=False, skip_measurements=True
            )
            if not measured:
                raise ValueError("circuit contains no measurements to sample")
            probabilities = np.abs(state) ** 2
            probabilities /= probabilities.sum()
            outcomes = self._rng.choice(len(state), size=shots, p=probabilities)
            counts: dict[str, int] = {}
            for outcome in outcomes:
                bits = 0
                for qubit, clbit in measured:
                    if (int(outcome) >> qubit) & 1:
                        bits |= 1 << clbit
                key = format(bits, f"0{circuit.num_clbits}b")
                counts[key] = counts.get(key, 0) + 1
            return Counts(counts, num_clbits=circuit.num_clbits)

        counts = {}
        for _ in range(shots):
            _, clbits = self._evolve(circuit, initial_state, allow_measure=True)
            key = format(clbits, f"0{circuit.num_clbits}b")
            counts[key] = counts.get(key, 0) + 1
        return Counts(counts, num_clbits=circuit.num_clbits)

    # ------------------------------------------------------------------

    @staticmethod
    def _measurements_are_terminal(circuit: QuantumCircuit) -> bool:
        seen_measure = set()
        for instruction in circuit.data:
            name = instruction.operation.name
            if name == "measure":
                seen_measure.update(instruction.qubits)
            elif name != "barrier" and seen_measure.intersection(instruction.qubits):
                return False
        return True

    def _evolve(
        self,
        circuit: QuantumCircuit,
        initial_state: np.ndarray | None,
        allow_measure: bool,
        skip_measurements: bool = False,
    ):
        num_qubits = circuit.num_qubits
        if initial_state is None:
            state = np.zeros(2**num_qubits, dtype=complex)
            state[0] = 1.0
        else:
            state = np.asarray(initial_state, dtype=complex).copy()
            if state.shape != (2**num_qubits,):
                raise ValueError("initial state has wrong dimension")
        state *= np.exp(1j * circuit.global_phase)

        clbits = 0
        measured: list[tuple[int, int]] = []
        for instruction in circuit.data:
            operation = instruction.operation
            name = operation.name
            if operation.is_directive:
                continue
            if name == "measure":
                if skip_measurements:
                    measured.append((instruction.qubits[0], instruction.clbits[0]))
                    continue
                if not allow_measure:
                    raise ValueError("circuit contains mid-circuit measurement")
                outcome, state = self._measure(state, instruction.qubits[0], num_qubits)
                clbit = instruction.clbits[0]
                clbits = (clbits & ~(1 << clbit)) | (outcome << clbit)
                continue
            if name == "reset":
                outcome, state = self._measure(state, instruction.qubits[0], num_qubits)
                if outcome:
                    x_matrix = np.array([[0, 1], [1, 0]], dtype=complex)
                    state = apply_gate_to_state(
                        state, x_matrix, instruction.qubits, num_qubits
                    )
                continue
            if not operation.is_gate():
                raise ValueError(f"cannot simulate instruction {name!r}")
            state = apply_gate_to_state(
                state, operation.to_matrix(), instruction.qubits, num_qubits
            )
        return state, (measured if skip_measurements else clbits)

    def _measure(self, state: np.ndarray, qubit: int, num_qubits: int):
        indices = np.arange(len(state))
        mask = (indices >> qubit) & 1
        prob_one = float(np.sum(np.abs(state[mask == 1]) ** 2))
        outcome = int(self._rng.random() < prob_one)
        keep = mask == outcome
        collapsed = np.where(keep, state, 0.0)
        norm = np.linalg.norm(collapsed)
        if norm < 1e-12:
            raise RuntimeError("measurement collapsed to zero-norm state")
        return outcome, collapsed / norm


def simulate_statevector(
    circuit: QuantumCircuit, initial_state: np.ndarray | None = None
) -> np.ndarray:
    """Convenience wrapper: final statevector of a measurement-free circuit."""
    return StatevectorSimulator().statevector(circuit, initial_state)
