"""Exact statevector simulation.

States are little-endian: bit ``k`` of a basis index is circuit qubit ``k``.
The simulator supports every gate in the library, plus measurement (with
collapse), reset, and directives (skipped).

Circuits are lowered once per call through the gate-fusion pre-step
(:func:`repro.simulators.fusion.compile_program`): adjacent gates on the
same qubit (or qubit pair) collapse into single fused matrices and gate
matrices resolve through the shared analysis cache's standard-gate table
instead of one ``to_matrix()`` per instruction.  ``fusion=False`` keeps
the one-step-per-gate program (matrices still come from the cache).

The evolve loop is **backend-resident** (:mod:`repro.linalg.backend`):
the state tensor is created on the active array backend, gate matrices
upload once per fused program (:meth:`FusedProgram.staged`), and every
reshape/transpose/matmul runs as an array *method* so the same code
drives NumPy and CuPy arrays.  Results cross back to the host through a
single ``asnumpy()`` hop at the boundary (:meth:`statevector` returns
the final state; the terminal-sampling path downloads the outcome
distribution).  Mid-circuit measurements additionally sync one scalar
probability per collapse -- inherent to sampling a branch.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.quantumcircuit import QuantumCircuit
from repro.gates.matrices import standard_gate_matrix
from repro.linalg.backend import get_backend, register_backend_listener
from repro.linalg.random import as_rng
from repro.simulators.fusion import FusedProgram, compile_program
from repro.transpiler.cache import AnalysisCache

__all__ = ["StatevectorSimulator", "simulate_statevector", "apply_gate_to_state"]

#: Shared X matrix for the reset path (read-only, from the gate table).
_X_MATRIX = standard_gate_matrix("x")

#: Per-backend device copy of the X matrix (flushed on backend switches).
_DEVICE_CONSTANTS: dict[str, object] = {}


@register_backend_listener
def _flush_device_constants(_backend) -> None:
    _DEVICE_CONSTANTS.clear()


def _x_matrix(backend):
    """The reset-path X matrix as a backend-resident array."""
    if backend.name == "numpy":
        return _X_MATRIX
    matrix = _DEVICE_CONSTANTS.get(backend.name)
    if matrix is None:
        matrix = backend.asarray(_X_MATRIX, dtype=complex)
        _DEVICE_CONSTANTS[backend.name] = matrix
    return matrix


def apply_gate_to_state(state, matrix, qargs: tuple[int, ...], num_qubits: int):
    """Apply a k-qubit gate matrix to ``state`` on the given qubits.

    Implementation: permute the target qubits into the low bits, reshape to
    ``(2^(n-k), 2^k)``, right-multiply by the transposed matrix, and undo
    the permutation.

    ``state`` and ``matrix`` may be arrays of any active backend (NumPy,
    CuPy, or the instrumented test stub) -- only array methods and the
    ``@`` operator touch them, so the state never leaves its device.
    """
    k = len(qargs)
    if matrix.shape != (2**k, 2**k):
        raise ValueError("gate matrix does not match the number of qubits")
    tensor = state.reshape([2] * num_qubits)
    # tensor axis i corresponds to qubit (num_qubits - 1 - i)
    axis_of = lambda q: num_qubits - 1 - q  # noqa: E731 - tiny local helper
    target_axes = [axis_of(q) for q in qargs]
    rest_axes = [ax for ax in range(num_qubits) if ax not in target_axes]
    # order targets so that the *last* axis is qargs[0] (bit 0 of the gate)
    ordered_targets = [axis_of(q) for q in reversed(qargs)]
    permuted = tensor.transpose(rest_axes + ordered_targets)
    flattened = permuted.reshape(-1, 2**k)
    updated = flattened @ matrix.T
    updated = updated.reshape([2] * num_qubits)
    # invert the permutation
    inverse = np.argsort(rest_axes + ordered_targets).tolist()
    return updated.transpose(inverse).reshape(-1)


class StatevectorSimulator:
    """Runs circuits on exact statevectors.

    Measurements collapse the state and write classical bits; use
    :meth:`run` for a single trajectory or :meth:`statevector` for the
    final state of a measurement-free circuit.  The gate-matrix cache
    persists across calls, so repeated runs of structurally similar
    circuits skip matrix construction entirely.
    """

    def __init__(
        self,
        seed: int | np.random.Generator | None = None,
        fusion: bool = True,
    ):
        self._rng = as_rng(seed)
        self.fusion = fusion
        self._cache = AnalysisCache()

    def statevector(
        self, circuit: QuantumCircuit, initial_state: np.ndarray | None = None
    ) -> np.ndarray:
        """Final statevector (measurement-free circuits only).

        Always a host NumPy array -- the one boundary hop.
        """
        program = compile_program(circuit, fuse=self.fusion, cache=self._cache)
        state, _ = self._evolve(program, initial_state, allow_measure=False)
        return get_backend().asnumpy(state)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        initial_state: np.ndarray | None = None,
    ) -> dict[str, int]:
        """Sample measurement outcomes over ``shots`` trajectories.

        For circuits whose measurements are all terminal the sampling is done
        from the final distribution in one pass; otherwise each shot runs a
        full collapsing trajectory over the once-compiled fused program.
        """
        from repro.simulators.counts import Counts, sample_counts

        backend = get_backend()
        program = compile_program(circuit, fuse=self.fusion, cache=self._cache)
        if self._measurements_are_terminal(circuit):
            state, measured = self._evolve(
                program, initial_state, allow_measure=False, skip_measurements=True
            )
            if not measured:
                raise ValueError("circuit contains no measurements to sample")
            xp = backend.xp
            probabilities = xp.abs(state) ** 2
            probabilities = probabilities / probabilities.sum()
            return sample_counts(
                backend.asnumpy(probabilities),
                shots,
                self._rng,
                measured,
                circuit.num_clbits,
            )

        counts: dict[str, int] = {}
        for _ in range(shots):
            _, clbits = self._evolve(program, initial_state, allow_measure=True)
            key = format(clbits, f"0{circuit.num_clbits}b")
            counts[key] = counts.get(key, 0) + 1
        return Counts(counts, num_clbits=circuit.num_clbits)

    # ------------------------------------------------------------------

    @staticmethod
    def _measurements_are_terminal(circuit: QuantumCircuit) -> bool:
        seen_measure = set()
        for instruction in circuit.data:
            name = instruction.operation.name
            if name == "measure":
                seen_measure.update(instruction.qubits)
            elif name != "barrier" and seen_measure.intersection(instruction.qubits):
                return False
        return True

    def _evolve(
        self,
        program: FusedProgram,
        initial_state: np.ndarray | None,
        allow_measure: bool,
        skip_measurements: bool = False,
    ):
        backend = get_backend()
        xp = backend.xp
        num_qubits = program.num_qubits
        if initial_state is None:
            state = xp.zeros(2**num_qubits, dtype=complex)
            state[0] = 1.0
        else:
            host = np.asarray(initial_state, dtype=complex)
            if host.shape != (2**num_qubits,):
                raise ValueError("initial state has wrong dimension")
            state = backend.asarray(host).copy()
        state *= np.exp(1j * program.global_phase)

        clbits = 0
        measured: list[tuple[int, int]] = []
        for kind, first, second in program.staged(backend):
            if kind == "unitary":
                state = apply_gate_to_state(state, first, second, num_qubits)
                continue
            if kind == "measure":
                if skip_measurements:
                    measured.append((first, second))
                    continue
                if not allow_measure:
                    raise ValueError("circuit contains mid-circuit measurement")
                outcome, state = self._measure(state, first, num_qubits)
                clbits = (clbits & ~(1 << second)) | (outcome << second)
                continue
            if kind == "reset":
                outcome, state = self._measure(state, first, num_qubits)
                if outcome:
                    state = apply_gate_to_state(
                        state, _x_matrix(backend), (first,), num_qubits
                    )
                continue
            raise ValueError(f"cannot simulate instruction {first.name!r}")
        return state, (measured if skip_measurements else clbits)

    def _measure(self, state, qubit: int, num_qubits: int):
        xp = get_backend().xp
        indices = xp.arange(len(state))
        mask = (indices >> qubit) & 1
        # the float() is the only mid-loop sync: sampling a branch needs
        # the branch probability on the host
        prob_one = float(xp.sum(xp.abs(state[mask == 1]) ** 2))
        outcome = int(self._rng.random() < prob_one)
        collapsed = xp.where(mask == outcome, state, 0.0)
        norm = float(xp.linalg.norm(collapsed))
        if norm < 1e-12:
            raise RuntimeError("measurement collapsed to zero-norm state")
        return outcome, collapsed / norm


def simulate_statevector(
    circuit: QuantumCircuit, initial_state: np.ndarray | None = None
) -> np.ndarray:
    """Convenience wrapper: final statevector of a measurement-free circuit."""
    return StatevectorSimulator().statevector(circuit, initial_state)
