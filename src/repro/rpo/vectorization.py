"""Scalar/vectorized mode selection for the RPO analysis core.

The trackers (and the Hoare optimizer's support transformers) ship two
implementations of every transition: the original scalar path -- one
qubit, one matrix, one Python call at a time -- and a vectorized path
over stacked arrays (:mod:`repro.linalg.batch`).  The vectorized path is
the default and is parity-gated against the scalar one (bit-identical
for the integer/basis automata, ``<= 1e-12`` for the angle-valued pure
tracker); the scalar path stays in-tree as the executable reference for
those parity tests and as an escape hatch:

    REPRO_SCALAR_TRACKERS=1  ->  every new tracker/pass runs scalar

The environment is re-read per construction (not cached at import), so
tests can flip modes with ``monkeypatch.setenv``.
"""

from __future__ import annotations

import os

__all__ = ["SCALAR_ENV_VAR", "vectorized_default"]

SCALAR_ENV_VAR = "REPRO_SCALAR_TRACKERS"

_TRUTHY = ("1", "true", "yes", "on")


def vectorized_default() -> bool:
    """``True`` unless ``REPRO_SCALAR_TRACKERS`` requests the scalar paths."""
    return os.environ.get(SCALAR_ENV_VAR, "").strip().lower() not in _TRUTHY
