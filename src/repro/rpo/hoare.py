"""Hoare-logic circuit optimizer -- the baseline the paper compares against.

Qiskit's ``HoareOptimizer`` (paper refs [2], [19]) tracks per-qubit
pre/postconditions with the Z3 SMT solver and removes gates whose triviality
conditions are entailed.  Z3 is unavailable offline, so this reimplementation
substitutes a built-in decision procedure with the same flavour (see
DESIGN.md): it tracks, for each *entanglement cluster* of qubits, the exact
set of computational-basis bitstrings the cluster's state is supported on
(capped, like a poor man's BDD).  Entailment queries become subset checks on
these supports.

Capabilities (intentionally matching the Z3 pass's Z-basis character):

* a controlled gate whose control bit is provably constant 0 is removed,
  provably constant 1 loses that control;
* a diagonal gate acting on a provably constant bit is a global phase and
  is removed;
* "generalized-permutation" gates (X, Z, S, T, u1, CX, CZ, CCX, SWAP, ...)
  transform the support exactly; non-monomial gates (H, u2, u3, ...) widen
  it.

Because supports ignore phases, the pass cannot see ``|+>`` vs ``|->`` --
exactly why it misses the boolean-to-phase oracle rewrite that QBO performs
(paper Sec. VIII-A) -- and the cluster/set machinery makes it measurably
slower than the automaton-based QBO, reproducing the paper's timing gap.

The support transformers run **vectorized** by default: each cluster's
pattern set round-trips through an ``int64`` array so the per-pattern bit
fiddling happens as a handful of NumPy ops instead of a Python loop, and
the monomial test classifies every distinct matrix of the circuit in one
:func:`repro.linalg.batch.monomial_permutations_batch` call during a
prescan.  Sets smaller than :data:`_VECTOR_MIN_PATTERNS` stay on the
per-pattern loops even in vectorized mode (NumPy's fixed per-call cost
dominates tiny sets).  ``vectorized=False`` (or
``REPRO_SCALAR_TRACKERS=1``) keeps the original per-pattern loops
throughout, which stay in-tree as the parity reference -- both paths
compute identical supports (integer bit arithmetic is exact).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.circuit.instruction import ControlledGate
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.linalg.batch import monomial_permutations_batch
from repro.rpo.vectorization import vectorized_default
from repro.transpiler.cache import AnalysisCache, _matrix_key
from repro.transpiler.passmanager import PropertySet, TransformationPass

__all__ = ["HoareOptimizer"]

_DIAGONAL_1Q = {"u1", "z", "s", "sdg", "t", "tdg", "rz"}

#: Gate names the support transformers handle without materialising a
#: matrix -- the monomial prescan skips these.
_NAMED_SUPPORT = frozenset(
    {
        "mcx", "ccx", "cx", "x",
        "mcz", "ccz", "cz", "z", "mcu1", "cp", "u1", "s", "sdg", "t", "tdg", "rz",
        "swap", "swapz", "cswap", "mcx_vchain",
    }
)


#: Below this many patterns the per-pattern Python loops beat the array
#: round-trip (measured crossover ~16-32); the vectorized transformers
#: delegate smaller sets to the scalar reference loops.
_VECTOR_MIN_PATTERNS = 32


def _as_patterns(support: set[int]) -> np.ndarray:
    """A cluster's support set as an ``int64`` pattern array."""
    return np.fromiter(support, dtype=np.int64, count=len(support))


def _product_size(clusters) -> int:
    """Upper bound on a merge's cross-product support size."""
    size = 1
    for cluster in clusters:
        size *= len(cluster.support)
    return size


def _as_support(patterns: np.ndarray) -> set[int]:
    """Back to the set-of-Python-ints representation clusters store."""
    # .tolist() converts to Python ints at C speed (map(int, ...) is ~4x
    # slower and would erase most of the kernel win)
    return set(patterns.tolist())


class _Cluster:
    """A set of possibly-entangled qubits with a basis-support set.

    ``support`` maps each reachable pattern (bit ``i`` = value of
    ``qubits[i]``) -- or is ``None`` when unknown (cap exceeded).
    """

    def __init__(self, qubits: tuple[int, ...], support: set[int] | None):
        self.qubits = list(qubits)
        self.support = support

    def bit_position(self, qubit: int) -> int:
        return self.qubits.index(qubit)

    def constant_bit(self, qubit: int) -> int | None:
        """Return 0/1 when the qubit's bit is the same in every pattern."""
        if self.support is None or not self.support:
            return None
        position = self.bit_position(qubit)
        values = {(pattern >> position) & 1 for pattern in self.support}
        if len(values) == 1:
            return values.pop()
        return None


class HoareOptimizer(TransformationPass):
    """Support-set Hoare-style optimizer (Z3-free stand-in)."""

    requires = ()
    preserves = ()
    invalidates = ()
    # removes gates provably acting trivially from the all-zeros state
    equivalence = "state"

    def __init__(
        self,
        max_support: int = 64,
        max_cluster: int = 16,
        vectorized: bool | None = None,
    ):
        self.max_support = max_support
        self.max_cluster = max_cluster
        self.vectorized = vectorized_default() if vectorized is None else vectorized
        # per-run state on a thread-local: concurrent runs of one pass
        # instance must not interleave
        self._run_state = threading.local()

    @property
    def name(self) -> str:
        return "HoareOptimizer"

    # ------------------------------------------------------------------

    @property
    def _cache(self) -> AnalysisCache:
        return self._run_state.cache

    @property
    def _cluster_of(self) -> dict[int, "_Cluster"]:
        return self._run_state.cluster_of

    def transform(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        self._run_state.cache = AnalysisCache.ensure(property_set)
        self._run_state.cluster_of = {
            q: _Cluster((q,), {0}) for q in range(circuit.num_qubits)
        }
        self._run_state.monomial_memo = (
            self._prescan_monomials(circuit) if self.vectorized else {}
        )
        output = circuit.copy_empty_like()
        for instruction in circuit.data:
            self._process(
                instruction.operation, instruction.qubits, instruction.clbits, output
            )
        return output

    def _prescan_monomials(self, circuit: QuantumCircuit) -> dict:
        """Bulk-classify the monomial structure of every matrix-path gate.

        One :func:`monomial_permutations_batch` call per operand dimension
        replaces the per-gate column loop.  The memo is keyed by matrix
        identity and keeps a reference to each keyed matrix so ids cannot
        be recycled; only value-keyable gates join (the analysis cache
        hands those back as one shared array per distinct gate, so the
        lookup at process time hits).  Everything else -- ad-hoc
        ``UnitaryGate`` matrices, gates synthesised by rule recursion --
        misses the memo and classifies through the early-exit column loop.
        """
        by_dim: dict[int, dict[int, np.ndarray]] = {}
        for instruction in circuit.data:
            operation = instruction.operation
            if (
                not operation.is_gate()
                or operation.num_qubits > 3
                or operation.name in _NAMED_SUPPORT
                or _matrix_key(operation) is None
            ):
                continue
            matrix = self._cache.matrix(operation)
            by_dim.setdefault(matrix.shape[0], {})[id(matrix)] = matrix
        memo: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}
        for gates in by_dim.values():
            matrices = list(gates.values())
            permutations, valid = monomial_permutations_batch(np.stack(matrices))
            for matrix, permutation, ok in zip(matrices, permutations, valid):
                memo[id(matrix)] = (matrix, permutation if ok else None)
        return memo

    # ------------------------------------------------------------------

    def _process(self, operation, qubits, clbits, output) -> None:
        name = operation.name
        if name in ("barrier", "annot"):
            # the Hoare baseline has no annotation support (Sec. VI-C is an
            # RPO feature); annotations pass through inert
            output.append(operation, qubits, clbits)
            return
        if name == "reset":
            self._apply_reset(qubits[0])
            output.append(operation, qubits, clbits)
            return
        if name == "measure":
            output.append(operation, qubits, clbits)
            return
        if not operation.is_gate():
            self._widen(qubits)
            output.append(operation, qubits, clbits)
            return

        # control-filtering through the decision procedure
        if isinstance(operation, ControlledGate) and operation.base_gate.num_qubits == 1:
            handled = self._try_control_rules(operation, qubits, output)
            if handled:
                return

        # trivial diagonal gates on provably constant bits
        if operation.num_qubits == 1 and name in _DIAGONAL_1Q:
            if self._constant_bit(qubits[0]) is not None:
                return  # same phase on every support pattern: global phase

        # a controlled *diagonal* gate whose target bit is provably constant
        # is a phase conditioned on the controls alone (this is the query
        # Qiskit's Z3-backed pass resolves for QPE's phase gates)
        if isinstance(operation, ControlledGate) and operation.base_gate.num_qubits == 1:
            handled = self._try_constant_target_diagonal(operation, qubits, output)
            if handled:
                return

        self._apply_gate_to_support(operation, qubits)
        output.append(operation, qubits, clbits)

    # -- rules ---------------------------------------------------------

    def _try_control_rules(self, operation: ControlledGate, qubits, output) -> bool:
        num_ctrl = operation.num_ctrl_qubits
        controls = list(qubits[:num_ctrl])
        target = qubits[num_ctrl]
        remaining: list[int] = []
        remaining_bits: list[int] = []
        for index, control in enumerate(controls):
            required = (operation.ctrl_state >> index) & 1
            constant = self._constant_bit(control)
            if constant is None:
                remaining.append(control)
                remaining_bits.append(required)
                continue
            if constant != required:
                return True  # provably never fires: removed
            # provably always fires: control dropped
        if len(remaining) == len(controls):
            return False  # nothing provable; fall through
        if not remaining:
            self._process(operation.base_gate, (target,), (), output)
            return True
        ctrl_state = 0
        for index, bit in enumerate(remaining_bits):
            ctrl_state |= bit << index
        reduced = ControlledGate(
            "c" * len(remaining) + operation.base_gate.name,
            len(remaining),
            operation.base_gate,
            ctrl_state=ctrl_state,
        )
        self._process(reduced, tuple(remaining) + (target,), (), output)
        return True

    def _try_constant_target_diagonal(self, operation: ControlledGate, qubits, output) -> bool:
        """Controlled-diagonal gate with a provably constant target bit."""
        import cmath

        base = operation.base_gate
        matrix = self._cache.matrix(base)
        if abs(matrix[0, 1]) > 1e-12 or abs(matrix[1, 0]) > 1e-12:
            return False  # not diagonal
        target = qubits[operation.num_ctrl_qubits]
        constant = self._constant_bit(target)
        if constant is None:
            return False
        eigenvalue = matrix[constant, constant]
        phase = cmath.phase(eigenvalue)
        if abs(phase) < 1e-12:
            return True  # acts as identity on the reachable branch: removed
        # Only the +/-1 eigenvalue cases are resolved, mirroring the
        # triviality conditions of the Z3-backed pass (which is strictly
        # weaker than RPO, paper Sec. VIII-B).
        if abs(abs(phase) - 3.141592653589793) > 1e-12:
            return False
        controls = qubits[: operation.num_ctrl_qubits]
        if operation.ctrl_state != (1 << operation.num_ctrl_qubits) - 1:
            return False  # open controls: leave to the generic path
        from repro.gates import MCU1Gate, U1Gate, ZGate

        if len(controls) == 1:
            self._process(ZGate(), (controls[0],), (), output)
        else:
            self._process(
                MCU1Gate(phase, len(controls) - 1), tuple(controls), (), output
            )
        return True

    # -- the decision procedure (support transformers) -------------------

    def _use_kernel(self, support) -> bool:
        """Route this support through the stacked kernels?"""
        return self.vectorized and len(support) >= _VECTOR_MIN_PATTERNS

    def _constant_bit(self, qubit: int) -> int | None:
        cluster = self._cluster_of[qubit]
        if cluster.support is None or not self._use_kernel(cluster.support):
            return cluster.constant_bit(qubit)
        bits = (_as_patterns(cluster.support) >> cluster.bit_position(qubit)) & 1
        value = int(bits[0])
        return value if bool((bits == value).all()) else None

    def _apply_reset(self, qubit: int) -> None:
        cluster = self._cluster_of[qubit]
        if cluster.support is None:
            # split the qubit out into a fresh definite cluster
            self._detach(qubit, value=0)
            return
        position = cluster.bit_position(qubit)
        if self._use_kernel(cluster.support):
            cluster.support = _as_support(
                _as_patterns(cluster.support) & ~(1 << position)
            )
            return
        cluster.support = {pattern & ~(1 << position) for pattern in cluster.support}

    def _detach(self, qubit: int, value: int) -> None:
        old = self._cluster_of[qubit]
        if len(old.qubits) > 1:
            old.qubits.remove(qubit)
            old.support = None  # partial collapse: stay conservative
        self._cluster_of[qubit] = _Cluster((qubit,), {value})

    def _merge(self, qubits) -> _Cluster:
        clusters = []
        for qubit in qubits:
            cluster = self._cluster_of[qubit]
            if cluster not in clusters:
                clusters.append(cluster)
        if len(clusters) == 1:
            return clusters[0]
        merged_qubits: list[int] = []
        for cluster in clusters:
            merged_qubits.extend(cluster.qubits)
        if (
            any(c.support is None for c in clusters)
            or len(merged_qubits) > self.max_cluster
        ):
            support = None
        elif self.vectorized and _product_size(clusters) >= _VECTOR_MIN_PATTERNS:
            # cross-product of the member supports as one broadcast | per
            # cluster (np.unique dedupes exactly like the set build)
            patterns = np.zeros(1, dtype=np.int64)
            offset = 0
            for cluster in clusters:
                sub = _as_patterns(cluster.support)
                patterns = np.unique(patterns[:, None] | (sub[None, :] << offset))
                offset += len(cluster.qubits)
                if len(patterns) > self.max_support:
                    patterns = None
                    break
            support = None if patterns is None else _as_support(patterns)
        else:
            support = {0}
            offset = 0
            for cluster in clusters:
                new_support = set()
                for pattern in support:
                    for sub in cluster.support:
                        new_support.add(pattern | (sub << offset))
                support = new_support
                offset += len(cluster.qubits)
                if len(support) > self.max_support:
                    support = None
                    break
        merged = _Cluster(tuple(merged_qubits), support)
        for qubit in merged_qubits:
            self._cluster_of[qubit] = merged
        return merged

    def _widen(self, qubits) -> None:
        cluster = self._merge(qubits)
        cluster.support = None

    def _expand(self, qubits) -> None:
        """Allow the touched bits to take either value (sound widening)."""
        cluster = self._merge(qubits)
        if cluster.support is None:
            return
        # widening stays on the set loops even in vectorized mode: on the
        # common already-saturated support the per-qubit union is a cheap
        # incremental no-op, which a materialize-all-then-dedupe kernel
        # can never beat
        support = cluster.support
        for qubit in qubits:
            position = cluster.bit_position(qubit)
            support = support | {pattern ^ (1 << position) for pattern in support}
            if len(support) > self.max_support:
                cluster.support = None
                return
        cluster.support = support

    def _apply_gate_to_support(self, operation, qubits) -> None:
        name = operation.name
        # named wide gates first (no matrix materialisation)
        if name in ("mcx", "ccx", "cx", "x") and self._is_closed(operation):
            self._apply_mcx(qubits[:-1], qubits[-1])
            return
        diagonal = ("mcz", "ccz", "cz", "z", "mcu1", "cp", "u1", "s", "sdg", "t", "tdg", "rz")
        if name in diagonal and self._is_closed(operation):
            return  # diagonal: support unchanged
        if name == "swap":
            self._apply_swap(*qubits)
            return
        if name == "swapz":
            # swapz = cx(b,a); cx(a,b)
            self._apply_mcx((qubits[1],), qubits[0])
            self._apply_mcx((qubits[0],), qubits[1])
            return
        if name == "cswap":
            self._apply_cswap(*qubits)
            return
        if name == "mcx_vchain":
            self._apply_vchain(operation, qubits)
            return
        if operation.num_qubits <= 3:
            matrix = self._cache.matrix(operation)
            monomial = self._monomial_permutation(matrix)
            if monomial is not None:
                self._apply_permutation(qubits, monomial)
                return
            # non-monomial (H, u2, u3, ...): the touched bits may take any
            # value afterwards -- expand the support instead of giving up
            self._expand(qubits)
            return
        self._widen(qubits)

    @staticmethod
    def _is_closed(operation) -> bool:
        if not isinstance(operation, ControlledGate):
            return True
        return operation.ctrl_state == (1 << operation.num_ctrl_qubits) - 1

    def _apply_mcx(self, controls, target) -> None:
        cluster = self._merge(list(controls) + [target])
        if cluster.support is None:
            return
        control_positions = [cluster.bit_position(c) for c in controls]
        target_position = cluster.bit_position(target)
        if self._use_kernel(cluster.support):
            patterns = _as_patterns(cluster.support)
            control_mask = sum(1 << p for p in control_positions)
            fires = (patterns & control_mask) == control_mask
            cluster.support = _as_support(
                np.where(fires, patterns ^ (1 << target_position), patterns)
            )
            return
        new_support = set()
        for pattern in cluster.support:
            if all((pattern >> p) & 1 for p in control_positions):
                pattern ^= 1 << target_position
            new_support.add(pattern)
        cluster.support = new_support

    @staticmethod
    def _swap_bits(patterns: np.ndarray, pa: int, pb: int) -> np.ndarray:
        """Exchange bits ``pa`` and ``pb`` of every stacked pattern."""
        bit_a = (patterns >> pa) & 1
        bit_b = (patterns >> pb) & 1
        cleared = patterns & ~((1 << pa) | (1 << pb))
        return cleared | (bit_b << pa) | (bit_a << pb)

    def _apply_swap(self, a, b) -> None:
        cluster = self._merge([a, b])
        if cluster.support is None:
            return
        pa, pb = cluster.bit_position(a), cluster.bit_position(b)
        if self._use_kernel(cluster.support):
            patterns = _as_patterns(cluster.support)
            cluster.support = _as_support(self._swap_bits(patterns, pa, pb))
            return
        new_support = set()
        for pattern in cluster.support:
            bit_a = (pattern >> pa) & 1
            bit_b = (pattern >> pb) & 1
            pattern &= ~((1 << pa) | (1 << pb))
            pattern |= (bit_b << pa) | (bit_a << pb)
            new_support.add(pattern)
        cluster.support = new_support

    def _apply_cswap(self, control, a, b) -> None:
        cluster = self._merge([control, a, b])
        if cluster.support is None:
            return
        pc = cluster.bit_position(control)
        pa, pb = cluster.bit_position(a), cluster.bit_position(b)
        if self._use_kernel(cluster.support):
            patterns = _as_patterns(cluster.support)
            fires = ((patterns >> pc) & 1).astype(bool)
            swapped = self._swap_bits(patterns, pa, pb)
            cluster.support = _as_support(np.where(fires, swapped, patterns))
            return
        new_support = set()
        for pattern in cluster.support:
            if (pattern >> pc) & 1:
                bit_a = (pattern >> pa) & 1
                bit_b = (pattern >> pb) & 1
                pattern &= ~((1 << pa) | (1 << pb))
                pattern |= (bit_b << pa) | (bit_a << pb)
            new_support.add(pattern)
        cluster.support = new_support

    def _apply_vchain(self, operation, qubits) -> None:
        k = operation.num_ctrl_qubits
        controls = qubits[:k]
        ancillas = qubits[k : k + operation.num_ancillas]
        target = qubits[-1]
        if all(self._constant_bit(a) == 0 for a in ancillas):
            self._apply_mcx(controls, target)
            return
        self._widen(qubits)

    def _monomial_permutation(self, matrix: np.ndarray):
        """If each column has a single nonzero entry, return the column->row
        permutation (a generalized permutation acts exactly on supports)."""
        if self.vectorized:
            memo = getattr(self._run_state, "monomial_memo", None)
            if memo is not None:
                hit = memo.get(id(matrix))
                if hit is not None:
                    return hit[1]
            # memo miss (unstable matrix identity): the early-exit column
            # loop below beats a one-matrix kernel call
        dim = matrix.shape[0]
        permutation = np.full(dim, -1, dtype=int)
        for column in range(dim):
            nonzero = np.flatnonzero(np.abs(matrix[:, column]) > 1e-10)
            if len(nonzero) != 1:
                return None
            permutation[column] = nonzero[0]
        return permutation

    def _apply_permutation(self, qubits, permutation) -> None:
        cluster = self._merge(qubits)
        if cluster.support is None:
            return
        positions = [cluster.bit_position(q) for q in qubits]
        if self._use_kernel(cluster.support):
            patterns = _as_patterns(cluster.support)
            pos = np.asarray(positions, dtype=np.int64)
            weights = np.arange(len(positions), dtype=np.int64)
            # gather the local index, permute, scatter the image back
            local = (((patterns[:, None] >> pos[None, :]) & 1) << weights).sum(axis=1)
            image = np.asarray(permutation, dtype=np.int64)[local]
            cleared = patterns & ~int((np.int64(1) << pos).sum())
            scattered = (((image[:, None] >> weights) & 1) << pos[None, :]).sum(axis=1)
            cluster.support = _as_support(cleared | scattered)
            return
        new_support = set()
        for pattern in cluster.support:
            local = 0
            for j, position in enumerate(positions):
                if (pattern >> position) & 1:
                    local |= 1 << j
            image = int(permutation[local])
            new_pattern = pattern
            for j, position in enumerate(positions):
                new_pattern &= ~(1 << position)
                if (image >> j) & 1:
                    new_pattern |= 1 << position
            new_support.add(new_pattern)
        cluster.support = new_support
