"""Quantum Pure-state Optimization (QPO) -- paper Secs. IV, V, VI-B.

Runs after unrolling (with ``swap``/``swapz`` kept as primitives) and 1q
fusion, per the pipeline of Fig. 8.  Two phases:

**Phase 1 -- gate rewrites** over the pure-state tracker:

* 1q gates stabilising the tracked state become global phases (Eq. 7
  generalised to arbitrary pure states);
* ``SWAP`` with both states known -> ``V`` / ``V^-1`` one-qubit gates
  (Eq. 6); with one state known -> ``U^-1 . SWAPZ . U`` (Eq. 5, one CNOT
  saved); the bracketing gates are u3's that downstream 1q fusion absorbs;
* ``CX``/``CZ`` whose tracked tuples coincide with basis states reuse the
  Table I rules (a basis state is a pure state, Sec. V-B);
* Fredkin with a known ``|0>``/``|1>`` control collapses per Sec. V-C, and
  with two known pure targets becomes two controlled-U gates (Eq. 9).

**Phase 2 -- block state preparation** (Sec. V-D, Figs. 3-4): a collected
two-qubit block whose *input* states are both known acts on a known product
state; the block (up to 3 CNOTs after consolidation) is replaced by the
universal one-CNOT preparation of its *output* state.
"""

from __future__ import annotations

import cmath
import math
import threading

import numpy as np

from repro.circuit.instruction import ControlledGate
from repro.circuit.quantumcircuit import CircuitInstruction, QuantumCircuit
from repro.linalg.batch import two_qubit_chain_unitaries
from repro.gates import SwapGate, SwapZGate, UnitaryGate, XGate, ZGate
from repro.rpo.pure_tracker import PureStateTracker
from repro.rpo.states import BasisState
from repro.transpiler.cache import AnalysisCache, rewrite_counter
from repro.transpiler.passmanager import PropertySet, TransformationPass

__all__ = ["QPOPass"]

_ZERO_ATOL = 1e-9


class QPOPass(TransformationPass):
    """The Quantum Pure-state Optimization pass."""

    requires = ()
    preserves = ()
    invalidates = ()
    # relaxed-precondition rewrite: sound from the all-zeros initial state
    equivalence = "state"

    def __init__(self, optimize_blocks: bool = True):
        self.optimize_blocks = optimize_blocks
        # per-run state on a thread-local: concurrent runs of one pass
        # instance must not interleave
        self._run_state = threading.local()

    @property
    def name(self) -> str:
        return "QPO"

    @property
    def _cache(self) -> AnalysisCache:
        return self._run_state.cache

    @property
    def _swapz_profitable(self) -> bool:
        return getattr(self._run_state, "swapz_profitable", True)

    def _count_rewrite(self) -> None:
        self._run_state.rewrites[self.name] += 1

    def transform(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        state = self._run_state
        state.cache = AnalysisCache.ensure(property_set)
        state.rewrites = rewrite_counter(property_set)
        rewritten = self._rewrite_gates(circuit)
        if self.optimize_blocks:
            rewritten = self._rewrite_blocks(rewritten)
        return rewritten

    # ==================================================================
    # phase 1: per-gate rewrites
    # ==================================================================

    def _rewrite_gates(self, circuit: QuantumCircuit) -> QuantumCircuit:
        tracker = PureStateTracker(circuit.num_qubits)
        output = circuit.copy_empty_like()
        blocked = self._cache.same_pair_adjacency(circuit)
        for index, instruction in enumerate(circuit.data):
            self._run_state.swapz_profitable = index not in blocked
            self._process(
                instruction.operation, instruction.qubits, instruction.clbits,
                tracker, output,
            )
        self._run_state.swapz_profitable = True
        return output

    def _process(self, operation, qubits, clbits, tracker, output) -> None:
        name = operation.name
        if name == "barrier":
            output.append(operation, qubits, clbits)
            return
        if name == "annot":
            tracker.apply_annotation(qubits[0], *operation.params[:2])
            output.append(operation, qubits, clbits)
            return
        if name == "reset":
            tracker.apply_reset(qubits[0])
            output.append(operation, qubits, clbits)
            return
        if name == "measure":
            tracker.apply_measure(qubits[0])
            output.append(operation, qubits, clbits)
            return
        if not operation.is_gate():
            tracker.invalidate(qubits)
            output.append(operation, qubits, clbits)
            return
        if operation.num_qubits == 1:
            self._process_1q(operation, qubits[0], tracker, output)
            return
        if name == "swap":
            self._process_swap(qubits, tracker, output)
            return
        if name == "swapz":
            self._process_swapz(operation, qubits, tracker, output)
            return
        if name == "cswap":
            self._process_cswap(operation, qubits, tracker, output)
            return
        if name == "cx":
            self._process_cx(operation, qubits, tracker, output)
            return
        if name == "cz":
            self._process_cz(operation, qubits, tracker, output)
            return
        tracker.invalidate(qubits)
        output.append(operation, qubits, clbits)

    def _process_1q(self, operation, qubit, tracker, output) -> None:
        matrix = self._cache.matrix(operation)
        if tracker.is_known(qubit):
            vector = tracker.statevector(qubit)
            overlap = np.vdot(vector, matrix @ vector)
            if abs(abs(overlap) - 1.0) < 1e-9:
                output.global_phase += cmath.phase(overlap)
                self._count_rewrite()
                return
        tracker.apply_1q_gate(qubit, matrix)
        output.append(operation, (qubit,))

    # -- SWAP rules (Eqs. 4-6) ---------------------------------------------

    def _process_swap(self, qubits, tracker, output) -> None:
        a, b = qubits
        known_a, known_b = tracker.is_known(a), tracker.is_known(b)
        if known_a and known_b:
            # Eq. 6: V maps |psi_a> to |psi_b>, V^-1 the reverse
            prep_a = tracker.preparation_matrix(a)
            prep_b = tracker.preparation_matrix(b)
            v = prep_b @ prep_a.conj().T
            self._process(UnitaryGate(v, label="qpo_v"), (a,), (), tracker, output)
            self._process(
                UnitaryGate(v.conj().T, label="qpo_vdg"), (b,), (), tracker, output
            )
            return
        if (known_a or known_b) and self._swapz_profitable:
            # Eq. 5: transform the known state to |0>, SWAPZ, restore
            pure_q, other = (a, b) if known_a else (b, a)
            prep = tracker.preparation_matrix(pure_q)
            if not _is_zero_state(tracker.state(pure_q)):
                self._process(
                    UnitaryGate(prep.conj().T, label="qpo_prep_dg"),
                    (pure_q,), (), tracker, output,
                )
            output.append(SwapZGate(), (pure_q, other))
            tracker.apply_swap(pure_q, other)
            if not np.allclose(prep, np.eye(2), atol=1e-12):
                self._process(
                    UnitaryGate(prep, label="qpo_prep"), (other,), (), tracker, output
                )
            return
        tracker.apply_swap(a, b)
        output.append(SwapGate(), qubits)

    def _process_swapz(self, operation, qubits, tracker, output) -> None:
        zero_q, other = qubits
        if tracker.is_known(zero_q) and _is_zero_state(tracker.state(zero_q)):
            tracker.apply_swap(zero_q, other)
            output.append(operation, qubits)
            return
        tracker.invalidate(qubits)
        output.append(operation, qubits)

    # -- CX / CZ with basis-classified pure states (Sec. V-B) --------------

    def _process_cx(self, operation, qubits, tracker, output) -> None:
        control, target = qubits
        if getattr(operation, "ctrl_state", 1) == 1:
            ctrl_class = tracker.basis_classification(control)
            tgt_class = tracker.basis_classification(target)
            if ctrl_class is BasisState.ZERO:
                return
            if ctrl_class is BasisState.ONE:
                self._process(XGate(), (target,), (), tracker, output)
                return
            if tgt_class is BasisState.PLUS:
                return
            if tgt_class is BasisState.MINUS:
                self._process(ZGate(), (control,), (), tracker, output)
                return
        tracker.invalidate(qubits)
        output.append(operation, qubits)

    def _process_cz(self, operation, qubits, tracker, output) -> None:
        if getattr(operation, "ctrl_state", 1) == 1:
            for this, that in (qubits, qubits[::-1]):
                classification = tracker.basis_classification(this)
                if classification is BasisState.ZERO:
                    return
                if classification is BasisState.ONE:
                    self._process(ZGate(), (that,), (), tracker, output)
                    return
        tracker.invalidate(qubits)
        output.append(operation, qubits)

    # -- Fredkin (Eq. 9) -----------------------------------------------------

    def _process_cswap(self, operation, qubits, tracker, output) -> None:
        control, a, b = qubits
        ctrl_class = tracker.basis_classification(control)
        if ctrl_class is BasisState.ZERO:
            return
        if ctrl_class is BasisState.ONE:
            self._process_swap((a, b), tracker, output)
            return
        if tracker.is_known(a) and tracker.is_known(b):
            # Eq. 9: two controlled-U gates; U maps |psi_a> to |psi_b>
            prep_a = tracker.preparation_matrix(a)
            prep_b = tracker.preparation_matrix(b)
            u = prep_b @ prep_a.conj().T
            cu = ControlledGate("cu", 1, UnitaryGate(u, label="qpo_u"))
            cu_dag = ControlledGate("cu_dg", 1, UnitaryGate(u.conj().T, label="qpo_udg"))
            tracker.invalidate(qubits)
            output.append(cu, (control, a))
            output.append(cu_dag, (control, b))
            return
        tracker.invalidate(qubits)
        output.append(operation, qubits)

    # ==================================================================
    # phase 2: two-qubit block state preparation (Sec. V-D)
    # ==================================================================

    def _rewrite_blocks(self, circuit: QuantumCircuit) -> QuantumCircuit:
        tracker = PureStateTracker(circuit.num_qubits)
        output = circuit.copy_empty_like()
        open_blocks: dict[int, "_PureBlock"] = {}
        pending: dict[int, list[CircuitInstruction]] = {}

        def flush_pending(qubit: int) -> None:
            for instruction in pending.pop(qubit, []):
                self._track_and_emit(instruction, tracker, output)

        def flush_block(block: "_PureBlock") -> None:
            for qubit in block.pair:
                open_blocks.pop(qubit, None)
            self._emit_pure_block(block, tracker, output)

        def flush_qubit(qubit: int) -> None:
            block = open_blocks.get(qubit)
            if block is not None:
                flush_block(block)
            flush_pending(qubit)

        for instruction in circuit.data:
            operation = instruction.operation
            qubits = instruction.qubits
            simple = (
                operation.is_gate()
                and not operation.is_directive
                and not instruction.clbits
            )
            if simple and len(qubits) == 1:
                qubit = qubits[0]
                if qubit in open_blocks:
                    open_blocks[qubit].add(instruction)
                else:
                    pending.setdefault(qubit, []).append(instruction)
                continue
            two_qubit_names = ("cx", "cz", "swap", "swapz", "unitary")
            if simple and len(qubits) == 2 and operation.name in two_qubit_names:
                a, b = qubits
                pair = (min(a, b), max(a, b))
                block = open_blocks.get(a)
                if block is not None and block is open_blocks.get(b) and block.pair == pair:
                    block.add(instruction)
                    continue
                for qubit in (a, b):
                    old_block = open_blocks.get(qubit)
                    if old_block is not None:
                        flush_block(old_block)
                # the tracker has not replayed the held 1q gates, so its
                # state is the block-input state; the held gates join the
                # block and are accounted for in its matrix
                block = _PureBlock(pair, (tracker.state(pair[0]), tracker.state(pair[1])))
                for qubit in pair:
                    for held in pending.pop(qubit, []):
                        block.add(held)
                    open_blocks[qubit] = block
                block.add(instruction)
                continue
            for qubit in qubits:
                flush_qubit(qubit)
            self._track_and_emit(instruction, tracker, output)

        remaining = []
        for block in open_blocks.values():
            if block not in remaining:
                remaining.append(block)
        for block in remaining:
            flush_block(block)
        for qubit in sorted(pending):
            flush_pending(qubit)
        return output

    def _track_and_emit(self, instruction, tracker, output) -> None:
        """Emit an instruction unchanged while keeping the tracker sound."""
        operation = instruction.operation
        name = operation.name
        qubits = instruction.qubits
        if name == "annot":
            tracker.apply_annotation(qubits[0], *operation.params[:2])
        elif name == "reset":
            tracker.apply_reset(qubits[0])
        elif name == "measure":
            tracker.apply_measure(qubits[0])
        elif name == "barrier":
            pass
        elif operation.is_gate() and operation.num_qubits == 1:
            tracker.apply_1q_gate(qubits[0], self._cache.matrix(operation))
        elif name == "swap":
            tracker.apply_swap(*qubits)
        elif name == "swapz" and tracker.is_known(qubits[0]) and _is_zero_state(
            tracker.state(qubits[0])
        ):
            tracker.apply_swap(*qubits)
        else:
            tracker.invalidate(qubits)
        output.append(operation, qubits, instruction.clbits)

    def _emit_pure_block(self, block: "_PureBlock", tracker, output) -> None:
        input_states = block.input_states
        replaceable = (
            block.num_2q >= 2
            and input_states[0] is not None
            and input_states[1] is not None
        )
        if not replaceable:
            for instruction in block.instructions:
                self._track_and_emit(instruction, tracker, output)
            return
        from repro.linalg.two_qubit_synthesis import two_qubit_state_prep_circuit
        from repro.linalg.euler import u3_matrix
        from repro.linalg.state_prep import schmidt_decomposition

        low, high = block.pair
        psi_low = u3_matrix(*input_states[0], 0.0)[:, 0]
        psi_high = u3_matrix(*input_states[1], 0.0)[:, 0]
        input_vector = np.kron(psi_high, psi_low)  # little-endian: high wire = MSB
        output_vector = block.matrix(self._cache) @ input_vector

        prep = two_qubit_state_prep_circuit(output_vector)
        new_2q = prep.num_nonlocal_gates()
        if new_2q >= block.num_2q:
            for instruction in block.instructions:
                self._track_and_emit(instruction, tracker, output)
            return
        self._count_rewrite()
        # replacement must act on |00>: undo the known input states first
        undo_low = u3_matrix(*input_states[0], 0.0).conj().T
        undo_high = u3_matrix(*input_states[1], 0.0).conj().T
        if not np.allclose(undo_low, np.eye(2), atol=1e-12):
            output.append(UnitaryGate(undo_low, label="qpo_undo"), (low,))
        if not np.allclose(undo_high, np.eye(2), atol=1e-12):
            output.append(UnitaryGate(undo_high, label="qpo_undo"), (high,))
        output.global_phase += prep.global_phase
        for inner in prep.data:
            mapped = tuple((low, high)[q] for q in inner.qubits)
            output.append(inner.operation, mapped)
        # update tracked states from the produced output state
        coefficients, left_basis, right_basis = schmidt_decomposition(output_vector)
        if coefficients[1] < 1e-9:
            from repro.linalg.state_prep import prepare_one_qubit_state

            tracker.set_state(high, prepare_one_qubit_state(left_basis[:, 0]))
            tracker.set_state(low, prepare_one_qubit_state(right_basis[:, 0]))
        else:
            tracker.invalidate(block.pair)


class _PureBlock:
    """A two-qubit block plus the tracked input states at its opening."""

    def __init__(self, pair, input_states):
        self.pair = pair
        self.input_states = input_states
        self.instructions: list[CircuitInstruction] = []
        self.num_2q = 0

    def add(self, instruction: CircuitInstruction) -> None:
        self.instructions.append(instruction)
        if len(instruction.qubits) == 2:
            self.num_2q += 1

    def matrix(self, cache: AnalysisCache) -> np.ndarray:
        wire_of = {self.pair[0]: 0, self.pair[1]: 1}
        matrices = cache.matrices(
            [instruction.operation for instruction in self.instructions]
        )
        chain = [
            (matrix, tuple(wire_of[q] for q in instruction.qubits))
            for matrix, instruction in zip(matrices, self.instructions)
        ]
        # stacked embedding + fold reduction: bit-identical to the serial
        # embed_gate(...) @ acc accumulation this replaces
        return two_qubit_chain_unitaries([chain])[0]


def _is_zero_state(state) -> bool:
    if state is None:
        return False
    theta, _phi = state
    return abs(math.remainder(theta, 2 * math.pi)) < _ZERO_ATOL
