"""Same-pair adjacency analysis used by the SWAP rewrite guards.

Rewriting ``SWAP -> SWAPZ`` saves one CNOT *locally*, but a SWAP that sits
next to another two-qubit gate on the same qubit pair is better left alone:
the unitary block ``gate . SWAP`` consolidates to at most two CNOTs (the
SWAP "melts" into its neighbour under KAK re-synthesis), whereas
``gate . SWAPZ`` is generally SWAP-class (three CNOTs).  The guard makes the
SWAPZ rewrite a deterministic improvement instead of a sometimes-regression.
"""

from __future__ import annotations

from repro.circuit.quantumcircuit import QuantumCircuit

__all__ = ["same_pair_adjacent_indices"]

_BLOCKABLE_2Q = {"cx", "cz", "cy", "ch", "cp", "crx", "cry", "crz", "cu3",
                 "swap", "swapz", "iswap", "unitary"}


def same_pair_adjacent_indices(circuit: QuantumCircuit) -> set[int]:
    """Indices of 2q instructions with an adjacent same-pair 2q neighbour.

    Two two-qubit gates are *adjacent on a pair* when they act on the same
    unordered qubit pair and no other multi-qubit/non-gate operation touches
    either qubit in between (one-qubit gates do not break adjacency -- block
    collection absorbs them).
    """
    # per qubit: ordered list of (index, kind) where kind is a pair key for
    # blockable 2q gates or None for any other fencing operation
    per_qubit: dict[int, list[tuple[int, frozenset | None]]] = {}
    for index, instruction in enumerate(circuit.data):
        operation = instruction.operation
        qubits = instruction.qubits
        if operation.is_gate() and len(qubits) == 1 and not operation.is_directive:
            continue  # 1q gates are transparent
        if (
            operation.is_gate()
            and len(qubits) == 2
            and operation.name in _BLOCKABLE_2Q
            and not instruction.clbits
        ):
            key = frozenset(qubits)
        else:
            key = None
        for qubit in qubits:
            per_qubit.setdefault(qubit, []).append((index, key))

    adjacent: set[int] = set()
    for events in per_qubit.values():
        for position in range(len(events) - 1):
            index_a, key_a = events[position]
            index_b, key_b = events[position + 1]
            if key_a is not None and key_a == key_b:
                # same-pair neighbours on at least one wire: downstream
                # consolidation/commutation handles these at least as well
                # as the SWAPZ rewrite would (conservative single-wire test)
                adjacent.add(index_a)
                adjacent.add(index_b)
    return adjacent
