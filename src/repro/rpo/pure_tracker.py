"""The pure-state dataflow analysis (paper Sec. VI-B, Fig. 6).

Each qubit carries a Bloch tuple ``(theta, phi)`` describing its pure state
``|psi(theta, phi)> = cos(theta/2)|0> + e^{i phi} sin(theta/2)|1>``, or
``None`` for the unknown top state.  One-qubit gates update the tuple by
gate merging, exactly as the paper describes: applying ``u3(t, p, l)`` to
``u3(theta0, phi0, 0)|0>`` yields ``u3(theta1, phi1, 0)|0>`` with the
trailing ``lambda`` parameter discarded (it acts trivially on ``|0>``).

State is stored **stacked**: ``(theta, phi)`` for every qubit lives in one
``(N, 2)`` float array (plus a known-mask), and the gate-merge transition
runs through :func:`repro.linalg.batch.apply_1q_batch` -- the scalar
arithmetic on stacked operands, angles within ``1e-12`` of the scalar
path (same matmul, same extraction branch structure).
``vectorized=False`` (or ``REPRO_SCALAR_TRACKERS=1``) keeps the original
per-call scalar path as the parity reference.
"""

from __future__ import annotations

import math

import numpy as np

from repro.linalg.batch import apply_1q_batch
from repro.linalg.euler import u3_matrix, u3_params_from_unitary
from repro.rpo.states import BasisState, basis_state_of_bloch_tuple
from repro.rpo.vectorization import vectorized_default

__all__ = ["PureStateTracker"]

PureState = tuple[float, float]


class PureStateTracker:
    """Per-qubit ``(theta, phi)`` pure-state automaton (Fig. 6), stacked."""

    def __init__(self, num_qubits: int, vectorized: bool | None = None):
        self.tuples = np.zeros((num_qubits, 2), dtype=float)
        self.known = np.ones(num_qubits, dtype=bool)
        self.vectorized = vectorized_default() if vectorized is None else vectorized

    @property
    def states(self) -> list[PureState | None]:
        """The tracked tuples as a list (compatibility view)."""
        return [self.state(qubit) for qubit in range(len(self.known))]

    def state(self, qubit: int) -> PureState | None:
        if not self.known[qubit]:
            return None
        theta, phi = self.tuples[qubit]
        return (float(theta), float(phi))

    def is_known(self, qubit: int) -> bool:
        return bool(self.known[qubit])

    def set_state(self, qubit: int, state: PureState | None) -> None:
        if state is None:
            self.known[qubit] = False
            self.tuples[qubit] = 0.0
        else:
            self.known[qubit] = True
            self.tuples[qubit] = state

    def invalidate(self, qubits) -> None:
        for qubit in qubits:
            self.known[qubit] = False
            self.tuples[qubit] = 0.0

    # ------------------------------------------------------------------

    def statevector(self, qubit: int) -> np.ndarray:
        """The tracked state as a 2-vector (raises on TOP)."""
        state = self.state(qubit)
        if state is None:
            raise ValueError(f"qubit {qubit} is not in a tracked pure state")
        theta, phi = state
        return np.array(
            [math.cos(theta / 2), np.exp(1j * phi) * math.sin(theta / 2)],
            dtype=complex,
        )

    def preparation_matrix(self, qubit: int) -> np.ndarray:
        """``U = u3(theta, phi, 0)`` with ``U|0> = |psi>`` (paper Sec. IV)."""
        state = self.state(qubit)
        if state is None:
            raise ValueError(f"qubit {qubit} is not in a tracked pure state")
        return u3_matrix(state[0], state[1], 0.0)

    def basis_classification(self, qubit: int) -> BasisState:
        """Classify the tracked tuple as one of the six basis states."""
        state = self.state(qubit)
        if state is None:
            return BasisState.TOP
        return basis_state_of_bloch_tuple(*state)

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------

    def apply_1q_gate(self, qubit: int, matrix: np.ndarray) -> None:
        if not self.known[qubit]:
            return
        if not self.vectorized:
            theta0, phi0 = self.tuples[qubit]
            prepared = matrix @ u3_matrix(float(theta0), float(phi0), 0.0)
            theta, phi, _lam, _gamma = u3_params_from_unitary(prepared)
            self.tuples[qubit] = (theta, phi)
            return
        self.tuples[qubit] = apply_1q_batch(
            np.asarray(matrix, dtype=complex), self.tuples[qubit][None]
        )[0]

    def apply_1q_gates(self, qubits, matrices) -> None:
        """Apply one gate per qubit, all merges in one stacked kernel.

        ``matrices`` is an ``(N, 2, 2)`` stack aligned with ``qubits``;
        unknown qubits stay unknown.  Equivalent to pairwise
        :meth:`apply_1q_gate` calls (angles within ``1e-12``), in one
        :func:`~repro.linalg.batch.apply_1q_batch` call.
        """
        qubits = np.asarray(qubits, dtype=np.intp)
        stack = np.asarray(matrices, dtype=complex)
        if not self.vectorized:
            for qubit, matrix in zip(qubits, stack):
                self.apply_1q_gate(int(qubit), matrix)
            return
        if qubits.size == 0:
            return
        mask = self.known[qubits]
        if not mask.any():
            return
        active = qubits[mask]
        self.tuples[active] = apply_1q_batch(stack[mask], self.tuples[active])

    def apply_reset(self, qubit: int) -> None:
        self.known[qubit] = True
        self.tuples[qubit] = 0.0

    def apply_measure(self, qubit: int) -> None:
        if self.known[qubit]:
            theta = self.tuples[qubit, 0]
            if abs(theta) < 1e-9 or abs(theta - math.pi) < 1e-9:
                return  # Z-basis states survive measurement
        self.known[qubit] = False
        self.tuples[qubit] = 0.0

    def apply_annotation(self, qubit: int, theta: float, phi: float) -> None:
        self.known[qubit] = True
        self.tuples[qubit] = (float(theta), float(phi))

    def apply_swap(self, a: int, b: int) -> None:
        self.tuples[[a, b]] = self.tuples[[b, a]]
        self.known[[a, b]] = self.known[[b, a]]

    def copy(self) -> "PureStateTracker":
        clone = PureStateTracker(len(self.known), vectorized=self.vectorized)
        clone.tuples = self.tuples.copy()
        clone.known = self.known.copy()
        return clone
