"""The pure-state dataflow analysis (paper Sec. VI-B, Fig. 6).

Each qubit carries a Bloch tuple ``(theta, phi)`` describing its pure state
``|psi(theta, phi)> = cos(theta/2)|0> + e^{i phi} sin(theta/2)|1>``, or
``None`` for the unknown top state.  One-qubit gates update the tuple by
gate merging, exactly as the paper describes: applying ``u3(t, p, l)`` to
``u3(theta0, phi0, 0)|0>`` yields ``u3(theta1, phi1, 0)|0>`` with the
trailing ``lambda`` parameter discarded (it acts trivially on ``|0>``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.linalg.euler import u3_matrix, u3_params_from_unitary
from repro.rpo.states import BasisState, basis_state_of_bloch_tuple

__all__ = ["PureStateTracker"]

PureState = tuple[float, float]


class PureStateTracker:
    """Per-qubit ``(theta, phi)`` pure-state automaton (Fig. 6)."""

    def __init__(self, num_qubits: int):
        self.states: list[PureState | None] = [(0.0, 0.0)] * num_qubits

    def state(self, qubit: int) -> PureState | None:
        return self.states[qubit]

    def is_known(self, qubit: int) -> bool:
        return self.states[qubit] is not None

    def set_state(self, qubit: int, state: PureState | None) -> None:
        self.states[qubit] = state

    def invalidate(self, qubits) -> None:
        for qubit in qubits:
            self.states[qubit] = None

    # ------------------------------------------------------------------

    def statevector(self, qubit: int) -> np.ndarray:
        """The tracked state as a 2-vector (raises on TOP)."""
        state = self.states[qubit]
        if state is None:
            raise ValueError(f"qubit {qubit} is not in a tracked pure state")
        theta, phi = state
        return np.array(
            [math.cos(theta / 2), np.exp(1j * phi) * math.sin(theta / 2)],
            dtype=complex,
        )

    def preparation_matrix(self, qubit: int) -> np.ndarray:
        """``U = u3(theta, phi, 0)`` with ``U|0> = |psi>`` (paper Sec. IV)."""
        state = self.states[qubit]
        if state is None:
            raise ValueError(f"qubit {qubit} is not in a tracked pure state")
        return u3_matrix(state[0], state[1], 0.0)

    def basis_classification(self, qubit: int) -> BasisState:
        """Classify the tracked tuple as one of the six basis states."""
        state = self.states[qubit]
        if state is None:
            return BasisState.TOP
        return basis_state_of_bloch_tuple(*state)

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------

    def apply_1q_gate(self, qubit: int, matrix: np.ndarray) -> None:
        state = self.states[qubit]
        if state is None:
            return
        prepared = matrix @ u3_matrix(state[0], state[1], 0.0)
        theta, phi, _lam, _gamma = u3_params_from_unitary(prepared)
        self.states[qubit] = (theta, phi)

    def apply_reset(self, qubit: int) -> None:
        self.states[qubit] = (0.0, 0.0)

    def apply_measure(self, qubit: int) -> None:
        state = self.states[qubit]
        if state is not None and (
            abs(state[0]) < 1e-9 or abs(state[0] - math.pi) < 1e-9
        ):
            return  # Z-basis states survive measurement
        self.states[qubit] = None

    def apply_annotation(self, qubit: int, theta: float, phi: float) -> None:
        self.states[qubit] = (float(theta), float(phi))

    def apply_swap(self, a: int, b: int) -> None:
        self.states[a], self.states[b] = self.states[b], self.states[a]

    def copy(self) -> "PureStateTracker":
        clone = PureStateTracker(len(self.states))
        clone.states = list(self.states)
        return clone
