"""The basis-state lattice of the QBO analysis (paper Sec. VI-A, Fig. 5).

The six tracked states are the eigenstates of the three Pauli axes::

    ZERO  = |0>   (+Z)     ONE   = |1>   (-Z)
    PLUS  = |+>   (+X)     MINUS = |->   (-X)
    LEFT  = |L>   (+Y)     RIGHT = |R>   (-Y)

plus the lattice top ``TOP`` for "unknown / not a basis state".

Rather than hand-coding the transition table of Fig. 5, transitions are
computed exactly: a one-qubit gate ``U`` acts on Bloch vectors as the
``SO(3)`` rotation ``R_ij = Re tr(sigma_i U sigma_j U^dag) / 2``, so a basis
state maps to another basis state precisely when the rotated axis lands on a
signed coordinate axis.  This reproduces the paper's table for the half- and
quarter-turn gates *and* handles arbitrary ``u3`` parameters that happen to
be multiples of quarter turns.
"""

from __future__ import annotations

import cmath
import enum
import math

import numpy as np

__all__ = [
    "BasisState",
    "TOP",
    "bloch_of_basis_state",
    "basis_state_of_bloch",
    "bloch_rotation_of_gate",
    "transition",
    "eigenphase_if_fixed",
    "statevector_of_basis_state",
    "bloch_tuple_of_basis_state",
    "basis_state_of_bloch_tuple",
    "preparation_matrices",
]

_ATOL = 1e-9


class BasisState(enum.Enum):
    """One of the six tracked basis states, or the unknown top element."""

    ZERO = (2, +1)   # +Z
    ONE = (2, -1)    # -Z
    PLUS = (0, +1)   # +X
    MINUS = (0, -1)  # -X
    LEFT = (1, +1)   # +Y:  (|0> + i|1>)/sqrt(2)
    RIGHT = (1, -1)  # -Y:  (|0> - i|1>)/sqrt(2)
    TOP = (None, None)

    @property
    def axis(self):
        return self.value[0]

    @property
    def sign(self):
        return self.value[1]

    @property
    def is_known(self) -> bool:
        return self is not BasisState.TOP

    @property
    def is_z_basis(self) -> bool:
        return self in (BasisState.ZERO, BasisState.ONE)

    @property
    def is_x_basis(self) -> bool:
        return self in (BasisState.PLUS, BasisState.MINUS)

    @property
    def is_y_basis(self) -> bool:
        return self in (BasisState.LEFT, BasisState.RIGHT)


TOP = BasisState.TOP

_PAULIS = (
    np.array([[0, 1], [1, 0]], dtype=complex),
    np.array([[0, -1j], [1j, 0]], dtype=complex),
    np.array([[1, 0], [0, -1]], dtype=complex),
)

_SQRT2 = 1 / math.sqrt(2)

_STATEVECTORS = {
    BasisState.ZERO: np.array([1, 0], dtype=complex),
    BasisState.ONE: np.array([0, 1], dtype=complex),
    BasisState.PLUS: np.array([_SQRT2, _SQRT2], dtype=complex),
    BasisState.MINUS: np.array([_SQRT2, -_SQRT2], dtype=complex),
    BasisState.LEFT: np.array([_SQRT2, 1j * _SQRT2], dtype=complex),
    BasisState.RIGHT: np.array([_SQRT2, -1j * _SQRT2], dtype=complex),
}

#: Bloch tuples (theta, phi) of each basis state (paper Sec. VI-B encoding).
_BLOCH_TUPLES = {
    BasisState.ZERO: (0.0, 0.0),
    BasisState.ONE: (math.pi, 0.0),
    BasisState.PLUS: (math.pi / 2, 0.0),
    BasisState.MINUS: (math.pi / 2, math.pi),
    BasisState.LEFT: (math.pi / 2, math.pi / 2),
    BasisState.RIGHT: (math.pi / 2, -math.pi / 2),
}


def bloch_of_basis_state(state: BasisState) -> np.ndarray:
    """Unit Bloch vector of a known basis state."""
    if not state.is_known:
        raise ValueError("TOP has no Bloch vector")
    vector = np.zeros(3)
    vector[state.axis] = state.sign
    return vector


#: Signed-axis lookup ``(axis, sign) -> state`` -- the enum values are
#: exactly these pairs, so classification is a dominant-axis test plus one
#: dictionary probe instead of a scan over all six reference vectors.
_STATE_OF_SIGNED_AXIS = {
    state.value: state for state in BasisState if state is not BasisState.TOP
}

_RTOL = 1e-5  # matches the np.allclose default the scan-based version used


def basis_state_of_bloch(vector: np.ndarray, atol: float = 1e-8) -> BasisState:
    """Classify a Bloch vector as a basis state, or ``TOP``.

    A Bloch vector is a basis state exactly when it sits on a signed
    coordinate axis, so only the dominant component needs checking.
    """
    v0, v1, v2 = float(vector[0]), float(vector[1]), float(vector[2])
    a0, a1, a2 = abs(v0), abs(v1), abs(v2)
    if a0 >= a1 and a0 >= a2:
        axis, dominant, rest_a, rest_b = 0, v0, a1, a2
    elif a1 >= a2:
        axis, dominant, rest_a, rest_b = 1, v1, a0, a2
    else:
        axis, dominant, rest_a, rest_b = 2, v2, a0, a1
    sign = 1 if dominant >= 0 else -1
    if (
        abs(dominant - sign) <= atol + _RTOL
        and rest_a <= atol
        and rest_b <= atol
    ):
        return _STATE_OF_SIGNED_AXIS[(axis, sign)]
    return TOP


def statevector_of_basis_state(state: BasisState) -> np.ndarray:
    if not state.is_known:
        raise ValueError("TOP has no statevector")
    return _STATEVECTORS[state].copy()


def bloch_tuple_of_basis_state(state: BasisState) -> tuple[float, float]:
    """The ``(theta, phi)`` pure-state tuple of a basis state."""
    if not state.is_known:
        raise ValueError("TOP has no Bloch tuple")
    return _BLOCH_TUPLES[state]


def basis_state_of_bloch_tuple(theta: float, phi: float, atol: float = 1e-8) -> BasisState:
    """Classify a ``(theta, phi)`` pure-state tuple as a basis state or TOP."""
    x = math.sin(theta) * math.cos(phi)
    y = math.sin(theta) * math.sin(phi)
    z = math.cos(theta)
    return basis_state_of_bloch(np.array([x, y, z]), atol=atol)


def bloch_rotation_of_gate(matrix: np.ndarray) -> np.ndarray:
    """The SO(3) Bloch rotation of a one-qubit unitary."""
    rotation = np.empty((3, 3))
    u_dag = matrix.conj().T
    for i in range(3):
        for j in range(3):
            rotation[i, j] = 0.5 * np.real(
                np.trace(_PAULIS[i] @ matrix @ _PAULIS[j] @ u_dag)
            )
    return rotation


def transition(state: BasisState, matrix: np.ndarray) -> BasisState:
    """Apply a one-qubit gate to a tracked state (Fig. 5 automaton edge)."""
    if not state.is_known:
        return TOP
    rotated = bloch_rotation_of_gate(matrix) @ bloch_of_basis_state(state)
    return basis_state_of_bloch(rotated)


def eigenphase_if_fixed(state: BasisState, matrix: np.ndarray) -> float | None:
    """If ``state`` is an eigenstate of the gate, return the eigenphase.

    This powers the single-qubit elimination rule (paper Eq. 7): a gate
    whose input is one of its eigenstates acts as a global phase on an
    unentangled qubit and can be removed (tracking the phase).
    Returns ``None`` when the state is not fixed by the gate.
    """
    if not state.is_known:
        return None
    vector = _STATEVECTORS[state]
    image = matrix @ vector
    overlap = np.vdot(vector, image)
    if abs(abs(overlap) - 1.0) > 1e-9:
        return None
    return float(cmath.phase(overlap))


def preparation_matrices(state: BasisState) -> np.ndarray:
    """A Clifford ``P`` with ``P|0> = |state>`` (used by the SWAP rules).

    Composing ``P_target @ P_source^dag`` yields the basis-change gates of
    the paper's Table VI.
    """
    if not state.is_known:
        raise ValueError("TOP has no preparation")
    h = np.array([[_SQRT2, _SQRT2], [_SQRT2, -_SQRT2]], dtype=complex)
    x = _PAULIS[0]
    s = np.array([[1, 0], [0, 1j]], dtype=complex)
    sdg = s.conj().T
    identity = np.eye(2, dtype=complex)
    return {
        BasisState.ZERO: identity,
        BasisState.ONE: x,
        BasisState.PLUS: h,
        BasisState.MINUS: h @ x,
        BasisState.LEFT: s @ h,
        BasisState.RIGHT: sdg @ h,
    }[state]
