"""The RPO pipeline (paper Fig. 8) and the Hoare-baseline pipeline.

``rpo_pass_manager`` reproduces optimization level 3 with the underlined
additions of Fig. 8::

    1  QBO()
    2  Unroller(basis_gates)
    3  <layout selection>
    4  <routing process>
    5  QBO()
    6  Unroller(basis_gates + swap + swapz)
    7  Optimize1qGates()
    8  QPO()
    9  while not <fixed point>:
   10      <optimizations>

The early QBO cascades through the rest of the pipeline (any gate removed
up front speeds up and improves every later pass -- the mechanism behind
the paper's *reduced* transpile times despite extra passes); the second QBO
targets the routing-inserted SWAPs; QPO runs once outside the fixed-point
loop because the loop's optimizations preserve the state invariants
(Sec. VII-A).

Targets, scheduler and cache architecture
-----------------------------------------

Each factory takes a :class:`~repro.transpiler.target.Target` (basis gates
+ coupling map + calibration data in one hashable object) as its first
argument; bare :class:`~repro.transpiler.coupling.CouplingMap` values plus
the historical ``basis``/``backend_properties`` keywords are coerced for
back-compat.  The unroll/layout/route stage comes from
:func:`repro.transpiler.preset.layout_stage` (shared with the preset
levels); RPO and Hoare splice their own passes around it.

The factories return plain schedules; the execution semantics live in
:class:`repro.transpiler.passmanager.PassManager`, which is
requirements/preserves-aware: passes declare ``requires``/``provides``/
``preserves``/``invalidates``, the manager skips analysis passes whose
results are still valid (including after structurally-unchanged
transformations, which short-circuits the tail of the Fig. 8 fixed-point
loop), and every run returns a
:class:`~repro.transpiler.passmanager.TranspileResult` with per-pass and
per-loop-iteration metrics -- the paper's transpile-time mechanism made
observable per run.

All passes share one :class:`~repro.transpiler.cache.AnalysisCache`
(memoized gate matrices, the ``same_pair_adjacent_indices`` adjacency map
that guards the SWAP rewrites, per-wire index views): QBO and QPO hit the
same adjacency entry, and the state trackers, 1q fusion and block
consolidation resolve repeated gates to one matrix construction.  Callers
wanting cross-run sharing (the serving path) go through
:func:`repro.transpiler.frontend.transpile` or a long-lived
:class:`~repro.transpiler.service.CompileService`, which keep one warm
cache under every batch.

Prefer ``transpile(circuit, backend=..., pipeline="rpo")`` over wiring
these factories by hand.
"""

from __future__ import annotations

from repro.transpiler.coupling import CouplingMap
from repro.transpiler.layout import Layout
from repro.transpiler.passmanager import PassManager
from repro.transpiler.passes import (
    IBM_BASIS,
    Optimize1qGates,
    RemoveAnnotations,
    RemoveDiagonalGatesBeforeMeasure,
    Unroller,
)
from repro.transpiler.preset import layout_stage, optimization_loop
from repro.transpiler.target import Target
from repro.rpo.hoare import HoareOptimizer
from repro.rpo.qbo import QBOPass
from repro.rpo.qpo import QPOPass

__all__ = ["rpo_pass_manager", "rpo_extended_pass_manager", "hoare_pass_manager"]


def rpo_pass_manager(
    target: Target | CouplingMap,
    backend_properties=None,
    seed: int | None = None,
    basis=IBM_BASIS,
    initial_layout: Layout | None = None,
    enable_qpo_blocks: bool = False,
    general_eigenphase: bool = False,
) -> PassManager:
    """Level 3 extended with QBO/QPO at the Fig. 8 positions.

    The two flags enable the paper's *proposed* generalisations beyond what
    its evaluation exercises: the Sec. V-D two-qubit-block state
    preparation (``enable_qpo_blocks``) and the arbitrary-eigenphase
    controlled-gate rule (``general_eigenphase``); see
    :func:`rpo_extended_pass_manager` and the ablation benchmarks.
    """
    target = Target.coerce(target, basis=basis, properties=backend_properties)
    basis = target.basis
    pm = PassManager()
    pm.append(QBOPass(general_eigenphase=general_eigenphase))   # line 1
    pm.append(                                                  # lines 2-4
        layout_stage(
            target,
            dense=True,
            swap_trials=8,
            seed=seed,
            initial_layout=initial_layout,
            unroll_after=False,
        )
    )
    pm.append(QBOPass(general_eigenphase=general_eigenphase))  # line 5
    pm.append(Unroller(basis + ("swap", "swapz")))         # line 6
    pm.append(Optimize1qGates())                           # line 7
    pm.append(QPOPass(optimize_blocks=enable_qpo_blocks))  # line 8
    pm.append(Unroller(basis))  # lower remaining swap/swapz before the loop
    pm.append(Optimize1qGates())
    pm.append(                                             # lines 9-10
        optimization_loop(basis, commutative=True, consolidate=True)
    )
    pm.append(RemoveDiagonalGatesBeforeMeasure())
    pm.append(RemoveAnnotations())
    return pm


def rpo_extended_pass_manager(
    target: Target | CouplingMap,
    backend_properties=None,
    seed: int | None = None,
    basis=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> PassManager:
    """RPO with every proposed generalisation switched on.

    Enables the Sec. V-D block state-preparation rewrite and the
    general-eigenphase controlled-gate rule.  Strictly functional-
    equivalence-preserving, usually strictly stronger than the paper's
    evaluated configuration (dramatically so on QPE, whose phase kicks
    collapse to one-qubit gates).
    """
    return rpo_pass_manager(
        target,
        backend_properties=backend_properties,
        seed=seed,
        basis=basis,
        initial_layout=initial_layout,
        enable_qpo_blocks=True,
        general_eigenphase=True,
    )


def hoare_pass_manager(
    target: Target | CouplingMap,
    backend_properties=None,
    seed: int | None = None,
    basis=IBM_BASIS,
    initial_layout: Layout | None = None,
) -> PassManager:
    """Level 3 with the Hoare-logic pass appended (paper Sec. VII-B).

    The Hoare pass is given the same two slots QBO occupies in the RPO
    pipeline (before unrolling and after routing), which is generous to the
    baseline; it still finds a strict subset of the RPO rewrites.
    """
    target = Target.coerce(target, basis=basis, properties=backend_properties)
    basis = target.basis
    pm = PassManager()
    pm.append(HoareOptimizer())
    pm.append(
        layout_stage(
            target,
            dense=True,
            swap_trials=8,
            seed=seed,
            initial_layout=initial_layout,
            unroll_after=False,
        )
    )
    pm.append(HoareOptimizer())
    pm.append(Unroller(basis))
    pm.append(Optimize1qGates())
    pm.append(optimization_loop(basis, commutative=True, consolidate=True))
    pm.append(RemoveDiagonalGatesBeforeMeasure())
    pm.append(RemoveAnnotations())
    return pm
