"""Quantum Basis-state Optimization (QBO) -- paper Secs. III, V, VI-A.

A single forward sweep over the circuit, maintaining the basis-state
automaton and rewriting gates whose inputs are statically known.  All of the
paper's basis-state rules flow from a small rewrite core:

* **1q elimination (Eq. 7):** a gate whose input is one of its eigenstates
  becomes a tracked global phase (the qubit is provably unentangled).
* **Control filtering:** a control qubit in a known Z-basis state either
  always fires (drop the control -- Table I ``|1>`` rule, Eq. 8 case 2) or
  never fires (drop the whole gate -- Table I ``|0>`` rule, Eq. 8 case 1).
  Open controls (Appendix C) fall out of the same check against the
  required control value.
* **Target eigenstate reduction:** a controlled-``U`` whose target is an
  eigenstate of ``U`` with eigenphase ``alpha`` is a pure controlled phase:
  remove it when ``alpha = 0`` (CNOT target ``|+>``, Eq. 8 case 3), rewrite
  to a (multi-)controlled-Z/phase on the controls otherwise (CNOT target
  ``|->`` -> Z on control, Table I; Toffoli target ``|->`` -> CZ, Eq. 8
  case 4; and the general multi-controlled-U rule of Sec. V-C).
* **SWAP rules (Secs. III-IV, Table VI):** SWAP with both states known
  becomes two one-qubit basis changes (Eq. 6); with one state known it
  becomes SWAPZ bracketed by basis-prep Cliffords (Eqs. 4-5); input SWAPZ
  gates are validated and demoted to their CNOT pair when the zero-input
  promise fails (Fig. 8 line 1 semantics).
* **Fredkin (Sec. V-C):** control ``|0>`` removes the gate, control ``|1>``
  leaves a SWAP (recursively optimized); a known target state triggers the
  CNOT-level optimization through the Fig. 14 decomposition.
* **V-chain MCX:** the clean-ancilla form is reduced like a
  multi-controlled-X when its ancillas are provably ``|0>`` -- the pattern
  the paper's annotations enable across Grover iterations (Sec. VIII-C).

Rewrites re-enter the engine, so cascades (e.g. Toffoli -> CX -> Z ->
eliminated) resolve in one sweep.
"""

from __future__ import annotations

import math
import threading

import numpy as np

from repro.circuit.instruction import ControlledGate, Gate
from repro.circuit.quantumcircuit import QuantumCircuit
from repro.gates import (
    CCXGate,
    CCZGate,
    CXGate,
    CZGate,
    MCU1Gate,
    MCXGate,
    MCXVChainGate,
    MCZGate,
    SwapZGate,
    U1Gate,
    UnitaryGate,
)
from repro.rpo.basis_tracker import BasisStateTracker
from repro.rpo.states import BasisState, eigenphase_if_fixed, preparation_matrices
from repro.transpiler.cache import AnalysisCache, rewrite_counter
from repro.transpiler.passmanager import PropertySet, TransformationPass

__all__ = ["QBOPass"]

_PHASE_ATOL = 1e-9


def _is_trivial_phase(alpha: float) -> bool:
    return abs(math.remainder(alpha, 2 * math.pi)) < _PHASE_ATOL


class QBOPass(TransformationPass):
    """The Quantum Basis-state Optimization pass.

    Args:
        general_eigenphase: the paper's multi-controlled-U rule (Sec. V-C)
            only covers target eigenstates with eigenvalue ``+1`` (remove)
            or ``-1`` (controlled-Z on the controls).  With this flag the
            rule generalises to *any* eigenphase ``alpha``, rewriting to a
            multi-controlled phase ``MCU1(alpha)`` -- a sound extension that
            e.g. collapses QPE's phase kicks entirely (see the ablation
            benchmarks).  Off by default to stay faithful to the paper.
    """

    requires = ()
    preserves = ()
    invalidates = ()
    # relaxed-precondition rewrite: sound from the all-zeros initial state
    equivalence = "state"

    def __init__(self, general_eigenphase: bool = False):
        self.general_eigenphase = general_eigenphase
        # per-run state lives on a thread-local so concurrent runs of one
        # pass instance (e.g. one PassManager driven from several threads)
        # cannot interleave
        self._run_state = threading.local()

    @property
    def name(self) -> str:
        return "QBO"

    @property
    def _cache(self) -> AnalysisCache:
        return self._run_state.cache

    @property
    def _swapz_profitable(self) -> bool:
        return getattr(self._run_state, "swapz_profitable", True)

    def _count_rewrite(self) -> None:
        self._run_state.rewrites[self.name] += 1

    def transform(self, circuit: QuantumCircuit, property_set: PropertySet) -> QuantumCircuit:
        state = self._run_state
        state.cache = AnalysisCache.ensure(property_set)
        state.rewrites = rewrite_counter(property_set)
        tracker = BasisStateTracker(circuit.num_qubits)
        output = circuit.copy_empty_like()
        blocked = state.cache.same_pair_adjacency(circuit)
        for index, instruction in enumerate(circuit.data):
            # SWAPs that would consolidate with a same-pair neighbour are
            # better left to the unitary re-synthesis (see rpo.adjacency)
            state.swapz_profitable = index not in blocked
            self._process(
                instruction.operation,
                instruction.qubits,
                instruction.clbits,
                tracker,
                output,
            )
        state.swapz_profitable = True
        return output

    # ------------------------------------------------------------------
    # the rewrite engine
    # ------------------------------------------------------------------

    def _process(self, operation, qubits, clbits, tracker, output) -> None:
        name = operation.name

        if name == "barrier":
            output.append(operation, qubits, clbits)
            return
        if name == "annot":
            tracker.apply_annotation(qubits[0], *operation.params[:2])
            output.append(operation, qubits, clbits)
            return
        if name == "reset":
            tracker.apply_reset(qubits[0])
            output.append(operation, qubits, clbits)
            return
        if name == "measure":
            tracker.apply_measure(qubits[0])
            output.append(operation, qubits, clbits)
            return
        if not operation.is_gate():
            tracker.invalidate(qubits)
            output.append(operation, qubits, clbits)
            return

        if operation.num_qubits == 1:
            self._process_1q(operation, qubits[0], tracker, output)
            return
        if name == "swap":
            self._process_swap(operation, qubits, tracker, output)
            return
        if name == "swapz":
            self._process_swapz(operation, qubits, tracker, output)
            return
        if name == "cswap":
            self._process_cswap(operation, qubits, tracker, output)
            return
        if name == "mcx_vchain":
            self._process_vchain(operation, qubits, tracker, output)
            return
        if isinstance(operation, ControlledGate) and operation.base_gate.num_qubits == 1:
            self._process_controlled(operation, qubits, tracker, output)
            return

        # unknown multi-qubit gate: sound default
        tracker.invalidate(qubits)
        output.append(operation, qubits, clbits)

    # -- one-qubit gates (Eq. 7) ----------------------------------------

    def _process_1q(self, operation, qubit, tracker, output) -> None:
        matrix = self._cache.matrix(operation)
        phase = eigenphase_if_fixed(tracker.state(qubit), matrix)
        if phase is not None:
            # the qubit is unentangled and fixed by the gate: global phase
            output.global_phase += phase
            self._count_rewrite()
            return
        tracker.apply_1q_gate(qubit, matrix)
        output.append(operation, (qubit,))

    # -- controlled one-qubit-base gates ----------------------------------

    def _process_controlled(self, operation: ControlledGate, qubits, tracker, output) -> None:
        num_ctrl = operation.num_ctrl_qubits
        controls = list(qubits[:num_ctrl])
        target = qubits[num_ctrl]
        ctrl_state = operation.ctrl_state

        remaining: list[int] = []
        remaining_state_bits: list[int] = []
        for index, control in enumerate(controls):
            required = (ctrl_state >> index) & 1
            state = tracker.state(control)
            if state.is_z_basis:
                actual = 0 if state is BasisState.ZERO else 1
                if actual != required:
                    # the gate can never fire: remove (Table I / Eq. 8)
                    self._count_rewrite()
                    return
                continue  # always satisfied: drop this control
            remaining.append(control)
            remaining_state_bits.append(required)

        base = operation.base_gate
        if not remaining:
            # all controls satisfied: the bare base gate remains
            self._process(base, (target,), (), tracker, output)
            return

        base_matrix = self._cache.matrix(base)
        alpha = eigenphase_if_fixed(tracker.state(target), base_matrix)
        if alpha is not None:
            # target is an eigenstate: the gate is a pure controlled phase
            # on the remaining controls (Sec. V-C)
            folded = math.remainder(alpha, 2 * math.pi)
            if _is_trivial_phase(alpha):
                self._count_rewrite()
                return  # eigenvalue +1: remove (|psi+> rule)
            if abs(abs(folded) - math.pi) < _PHASE_ATOL:
                # eigenvalue -1: (multi-)controlled Z (|psi-> rule)
                self._emit_controlled_phase(
                    math.pi, remaining, remaining_state_bits, tracker, output
                )
                return
            if self.general_eigenphase:
                self._emit_controlled_phase(
                    alpha, remaining, remaining_state_bits, tracker, output
                )
                return
            # paper-faithful mode: no rule for general eigenphases

        reduced = self._rebuild_controlled(
            operation, base, len(remaining), remaining_state_bits
        )
        tracker.invalidate(remaining)
        if alpha is None:
            tracker.invalidate([target])
        # else: the target is an eigenstate of the base gate, so the kept
        # gate acts as a control-side phase and the target state survives
        output.append(reduced, tuple(remaining) + (target,))

    def _emit_controlled_phase(
        self, alpha, controls, state_bits, tracker, output
    ) -> None:
        """Emit ``exp(i*alpha)`` conditioned on the given (possibly open)
        controls -- the residue of the target-eigenstate rule."""
        if len(controls) == 1:
            if state_bits[0] == 1:
                self._process(U1Gate(alpha), (controls[0],), (), tracker, output)
            else:
                # fires when the control is |0>: u1 on the opposite branch
                # plus a matching global phase
                output.global_phase += alpha
                self._process(U1Gate(-alpha), (controls[0],), (), tracker, output)
            return
        # MCU1 treats its last wire as the "target"; that wire's condition
        # must be "fires on 1", so put a closed control there if one exists.
        order = list(range(len(controls)))
        closed = [i for i in order if state_bits[i] == 1]
        if closed:
            order.remove(closed[-1])
            order.append(closed[-1])
            wires = [controls[i] for i in order]
            bits = [state_bits[i] for i in order]
            ctrl_state = 0
            for index, bit in enumerate(bits[:-1]):
                ctrl_state |= bit << index
            gate = MCU1Gate(alpha, len(controls) - 1, ctrl_state=ctrl_state)
            tracker.invalidate(wires)
            output.append(gate, tuple(wires))
            return
        # every control is open: flip one wire explicitly (bypassing the
        # rewrite engine so the conjugation cannot be "optimized away")
        from repro.gates import XGate

        x_gate = XGate()
        wire = controls[-1]
        tracker.apply_1q_gate(wire, x_gate.to_matrix())
        output.append(x_gate, (wire,))
        self._emit_controlled_phase(
            alpha, controls, state_bits[:-1] + [1], tracker, output
        )
        tracker.apply_1q_gate(wire, x_gate.to_matrix())
        output.append(x_gate, (wire,))

    @staticmethod
    def _rebuild_controlled(original, base, num_ctrl, state_bits):
        """Reconstruct a controlled gate with the surviving controls."""
        ctrl_state = 0
        for index, bit in enumerate(state_bits):
            ctrl_state |= bit << index
        all_ones = (1 << num_ctrl) - 1
        if num_ctrl == original.num_ctrl_qubits and ctrl_state == original.ctrl_state:
            return original
        closed = ctrl_state == all_ones
        if base.name == "x" and closed:
            if num_ctrl == 1:
                return CXGate()
            if num_ctrl == 2:
                return CCXGate()
            return MCXGate(num_ctrl)
        if base.name == "z" and closed:
            if num_ctrl == 1:
                return CZGate()
            if num_ctrl == 2:
                return CCZGate()
            return MCZGate(num_ctrl)
        if base.name == "u1" and closed:
            return MCU1Gate(base.params[0], num_ctrl)
        return ControlledGate(
            "c" * num_ctrl + base.name, num_ctrl, base, ctrl_state=ctrl_state
        )

    # -- SWAP family -------------------------------------------------------

    def _process_swap(self, operation, qubits, tracker, output) -> None:
        a, b = qubits
        state_a, state_b = tracker.state(a), tracker.state(b)
        if state_a.is_known and state_b.is_known:
            # Eq. 6 (basis-state form, Table VI): two one-qubit basis changes
            if state_a is state_b:
                return
            prep_a = preparation_matrices(state_a)
            prep_b = preparation_matrices(state_b)
            v = prep_b @ prep_a.conj().T
            self._process(UnitaryGate(v, label="qbo_v"), (a,), (), tracker, output)
            self._process(
                UnitaryGate(v.conj().T, label="qbo_vdg"), (b,), (), tracker, output
            )
            return
        if (state_a.is_known or state_b.is_known) and self._swapz_profitable:
            # Eqs. 4-5: reduce to SWAPZ with basis-prep brackets
            zero_q, other = (a, b) if state_a.is_known else (b, a)
            known = tracker.state(zero_q)
            prep = preparation_matrices(known)
            if known is not BasisState.ZERO:
                self._process(
                    UnitaryGate(prep.conj().T, label="qbo_prep_dg"),
                    (zero_q,),
                    (),
                    tracker,
                    output,
                )
            output.append(SwapZGate(), (zero_q, other))
            tracker.apply_swap(zero_q, other)
            if known is not BasisState.ZERO:
                self._process(
                    UnitaryGate(prep, label="qbo_prep"), (other,), (), tracker, output
                )
            return
        tracker.apply_swap(a, b)
        output.append(operation, qubits)

    def _process_swapz(self, operation, qubits, tracker, output) -> None:
        zero_q, other = qubits
        if tracker.state(zero_q) is BasisState.ZERO:
            tracker.apply_swap(zero_q, other)
            output.append(operation, qubits)
            return
        # promise not provable: demote to the defining CNOT pair (Eq. 3),
        # which preserves the gate's unitary unconditionally
        self._process(CXGate(), (other, zero_q), (), tracker, output)
        self._process(CXGate(), (zero_q, other), (), tracker, output)

    def _process_cswap(self, operation, qubits, tracker, output) -> None:
        control, a, b = qubits
        state_c = tracker.state(control)
        if state_c is BasisState.ZERO:
            return
        if state_c is BasisState.ONE:
            from repro.gates import SwapGate

            self._process(SwapGate(), (a, b), (), tracker, output)
            return
        if tracker.state(a).is_known or tracker.state(b).is_known:
            # Fig. 14 decomposition; the outer CNOTs hit the basis rules
            self._process(CXGate(), (b, a), (), tracker, output)
            self._process(CCXGate(), (control, a, b), (), tracker, output)
            self._process(CXGate(), (b, a), (), tracker, output)
            return
        tracker.invalidate(qubits)
        output.append(operation, qubits)

    # -- V-chain MCX -------------------------------------------------------

    def _process_vchain(self, operation: MCXVChainGate, qubits, tracker, output) -> None:
        k = operation.num_ctrl_qubits
        controls = list(qubits[:k])
        ancillas = list(qubits[k : k + operation.num_ancillas])
        target = qubits[-1]

        ancillas_clean = all(
            tracker.state(q) is BasisState.ZERO for q in ancillas
        )
        if ancillas_clean:
            remaining = []
            for control in controls:
                state = tracker.state(control)
                if state is BasisState.ZERO:
                    return  # never fires; ancillas provably return to |0>
                if state is BasisState.ONE:
                    continue
                remaining.append(control)
            target_state = tracker.state(target)
            if target_state is BasisState.PLUS:
                return
            if not remaining:
                from repro.gates import XGate

                self._process(XGate(), (target,), (), tracker, output)
                return
            if target_state is BasisState.MINUS:
                # MCX target |->  ->  MCZ over the remaining controls (Eq. 8)
                if len(remaining) == 1:
                    from repro.gates import ZGate

                    self._process(ZGate(), (remaining[0],), (), tracker, output)
                else:
                    gate = MCZGate(len(remaining) - 1)
                    tracker.invalidate(remaining)
                    output.append(gate, tuple(remaining))
                return
            if len(remaining) < k:
                reduced = self._vchain_like(len(remaining))
                needed = max(0, len(remaining) - 2)
                used_ancillas = ancillas[:needed]
                tracker.invalidate(remaining + [target])
                # paper semantics: a surviving multi-qubit gate sends its
                # qubits to TOP -- including the ancillas it actually uses
                tracker.invalidate(used_ancillas)
                output.append(reduced, tuple(remaining) + tuple(used_ancillas) + (target,))
                return
        tracker.invalidate(qubits)
        output.append(operation, qubits)

    @staticmethod
    def _vchain_like(num_controls: int) -> Gate:
        if num_controls == 1:
            return CXGate()
        if num_controls == 2:
            return CCXGate()
        return MCXVChainGate(num_controls)
