"""Relaxed Peephole Optimization (RPO) -- the paper's contribution.

Two transpiler passes built on static quantum-state analysis:

* :class:`~repro.rpo.qbo.QBOPass` -- Quantum Basis-state Optimization: a
  finite-automaton analysis over the six basis states (paper Fig. 5) driving
  the rewrite rules of Tables I/VI and Eqs. 1-4, 7, 8;
* :class:`~repro.rpo.qpo.QPOPass` -- Quantum Pure-state Optimization: a
  ``(theta, phi)`` Bloch-tuple analysis (paper Fig. 6) driving the SWAP
  rewrites of Eqs. 5-6, the Fredkin rewrite of Eq. 9 and the two-qubit-block
  state-preparation rewrite of Sec. V-D.

:func:`~repro.rpo.pipeline.rpo_pass_manager` wires them into the level-3
pipeline at the positions of paper Fig. 8.  The Hoare-logic baseline the
paper compares against lives in :mod:`repro.rpo.hoare`.
"""

from repro.rpo.states import BasisState, TOP, basis_state_of_bloch, bloch_of_basis_state
from repro.rpo.basis_tracker import BasisStateTracker
from repro.rpo.pure_tracker import PureStateTracker
from repro.rpo.qbo import QBOPass
from repro.rpo.qpo import QPOPass
from repro.rpo.pipeline import (
    rpo_pass_manager,
    rpo_extended_pass_manager,
    hoare_pass_manager,
)
from repro.rpo.hoare import HoareOptimizer

__all__ = [
    "BasisState",
    "TOP",
    "basis_state_of_bloch",
    "bloch_of_basis_state",
    "BasisStateTracker",
    "PureStateTracker",
    "QBOPass",
    "QPOPass",
    "HoareOptimizer",
    "rpo_pass_manager",
    "rpo_extended_pass_manager",
    "hoare_pass_manager",
]
