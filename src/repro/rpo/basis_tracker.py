"""The basis-state dataflow analysis (paper Sec. VI-A).

Tracks, for every qubit, which of the six basis states it is provably in
(or ``TOP``).  Soundness invariant: a qubit whose tracked state is not
``TOP`` is unentangled and exactly in that pure state (up to the circuit's
tracked global phase) -- which is what licenses the relaxed rewrites.

The tracker is *passive*: the QBO pass drives it, informing it of the gates
it finally emits.  Any gate the pass does not understand sends the touched
qubits to ``TOP`` (always sound).
"""

from __future__ import annotations

import numpy as np

from repro.rpo.states import (
    TOP,
    BasisState,
    basis_state_of_bloch_tuple,
    transition,
)

__all__ = ["BasisStateTracker"]


class BasisStateTracker:
    """Per-qubit basis-state automaton (Fig. 5)."""

    def __init__(self, num_qubits: int):
        # quantum registers power up in the ground state (Sec. VI-A)
        self.states: list[BasisState] = [BasisState.ZERO] * num_qubits

    def state(self, qubit: int) -> BasisState:
        return self.states[qubit]

    def set_state(self, qubit: int, state: BasisState) -> None:
        self.states[qubit] = state

    def invalidate(self, qubits) -> None:
        for qubit in qubits:
            self.states[qubit] = TOP

    # ------------------------------------------------------------------
    # transitions (the automaton edges of Fig. 5)
    # ------------------------------------------------------------------

    def apply_1q_gate(self, qubit: int, matrix: np.ndarray) -> None:
        self.states[qubit] = transition(self.states[qubit], matrix)

    def apply_reset(self, qubit: int) -> None:
        self.states[qubit] = BasisState.ZERO

    def apply_measure(self, qubit: int) -> None:
        # A Z-basis measurement leaves a Z-basis state intact; anything else
        # collapses to an unknown classical state.
        if not self.states[qubit].is_z_basis:
            self.states[qubit] = TOP

    def apply_annotation(self, qubit: int, theta: float, phi: float) -> None:
        """``ANNOT(theta, phi)`` re-enters the automaton if the promised
        pure state is one of the six basis states (Fig. 5 ANNOT edge)."""
        self.states[qubit] = basis_state_of_bloch_tuple(theta, phi)

    def apply_swap(self, a: int, b: int) -> None:
        """SWAP and validated SWAPZ exchange the tracked states (including
        TOP), per Sec. VI-A."""
        self.states[a], self.states[b] = self.states[b], self.states[a]

    def copy(self) -> "BasisStateTracker":
        clone = BasisStateTracker(len(self.states))
        clone.states = list(self.states)
        return clone
