"""The basis-state dataflow analysis (paper Sec. VI-A).

Tracks, for every qubit, which of the six basis states it is provably in
(or ``TOP``).  Soundness invariant: a qubit whose tracked state is not
``TOP`` is unentangled and exactly in that pure state (up to the circuit's
tracked global phase) -- which is what licenses the relaxed rewrites.

The tracker is *passive*: the QBO pass drives it, informing it of the gates
it finally emits.  Any gate the pass does not understand sends the touched
qubits to ``TOP`` (always sound).

State is stored **stacked**: two small integer arrays hold every qubit's
``(axis, sign)`` encoding at once (``axis = -1`` marks ``TOP``), which is
exactly the enum's value encoding, so ``state()`` is one dictionary probe.
Transitions run through the stacked kernels
(:func:`repro.linalg.batch.bloch_rotation_batch` /
:func:`~repro.linalg.batch.basis_axes_batch`); because a basis vector is a
signed coordinate axis, the rotated vector is a *column pick* of the SO(3)
rotation -- bit-identical to the scalar ``rotation @ e_axis`` (the zero
terms add exactly).  ``vectorized=False`` (or ``REPRO_SCALAR_TRACKERS=1``)
keeps the original one-call-at-a-time scalar path as a parity reference.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.batch import basis_axes_batch, bloch_rotation_batch
from repro.rpo.states import (
    _STATE_OF_SIGNED_AXIS,
    TOP,
    BasisState,
    basis_state_of_bloch_tuple,
    transition,
)
from repro.rpo.vectorization import vectorized_default

__all__ = ["BasisStateTracker"]


class BasisStateTracker:
    """Per-qubit basis-state automaton (Fig. 5), stored as stacked arrays."""

    def __init__(self, num_qubits: int, vectorized: bool | None = None):
        # quantum registers power up in the ground state (Sec. VI-A):
        # axis 2 (+Z) with sign +1 is exactly BasisState.ZERO's encoding
        self.axes = np.full(num_qubits, 2, dtype=np.int8)
        self.signs = np.ones(num_qubits, dtype=np.int8)
        self.vectorized = vectorized_default() if vectorized is None else vectorized

    @property
    def states(self) -> list[BasisState]:
        """The tracked states as a list (compatibility view)."""
        return [self.state(qubit) for qubit in range(len(self.axes))]

    def state(self, qubit: int) -> BasisState:
        axis = int(self.axes[qubit])
        if axis < 0:
            return TOP
        return _STATE_OF_SIGNED_AXIS[(axis, int(self.signs[qubit]))]

    def set_state(self, qubit: int, state: BasisState) -> None:
        if state is TOP:
            self.axes[qubit] = -1
            self.signs[qubit] = 0
        else:
            self.axes[qubit] = state.axis
            self.signs[qubit] = state.sign

    def invalidate(self, qubits) -> None:
        for qubit in qubits:
            self.axes[qubit] = -1
            self.signs[qubit] = 0

    # ------------------------------------------------------------------
    # transitions (the automaton edges of Fig. 5)
    # ------------------------------------------------------------------

    def apply_1q_gate(self, qubit: int, matrix: np.ndarray) -> None:
        if not self.vectorized:
            self.set_state(qubit, transition(self.state(qubit), matrix))
            return
        if self.axes[qubit] < 0:
            return  # TOP is absorbing
        rotation = bloch_rotation_batch(np.asarray(matrix, dtype=complex)[None])[0]
        # basis vectors are signed coordinate axes: R @ (sign * e_axis) is
        # a column pick, bit-identical to the scalar matmul
        rotated = int(self.signs[qubit]) * rotation[:, int(self.axes[qubit])]
        axis, sign = basis_axes_batch(rotated[None])
        self.axes[qubit] = axis[0]
        self.signs[qubit] = sign[0]

    def apply_1q_gates(self, qubits, matrices) -> None:
        """Apply one gate per qubit, all transitions in one stacked kernel.

        ``matrices`` is an ``(N, 2, 2)`` stack aligned with ``qubits``;
        qubits already at ``TOP`` stay there.  Equivalent to calling
        :meth:`apply_1q_gate` pairwise (the batched kernels are
        bit-identical to the scalar loop), in one
        :func:`~repro.linalg.batch.bloch_rotation_batch` call.
        """
        qubits = np.asarray(qubits, dtype=np.intp)
        stack = np.asarray(matrices, dtype=complex)
        if not self.vectorized:
            for qubit, matrix in zip(qubits, stack):
                self.apply_1q_gate(int(qubit), matrix)
            return
        if qubits.size == 0:
            return
        known = self.axes[qubits] >= 0
        if not known.any():
            return
        active = qubits[known]
        rotations = bloch_rotation_batch(stack[known])
        columns = rotations[np.arange(len(active)), :, self.axes[active].astype(np.intp)]
        rotated = self.signs[active].astype(float)[:, None] * columns
        axis, sign = basis_axes_batch(rotated)
        self.axes[active] = axis.astype(np.int8)
        self.signs[active] = sign.astype(np.int8)

    def apply_reset(self, qubit: int) -> None:
        self.axes[qubit] = 2
        self.signs[qubit] = 1

    def apply_measure(self, qubit: int) -> None:
        # A Z-basis measurement leaves a Z-basis state intact; anything else
        # collapses to an unknown classical state.
        if self.axes[qubit] != 2:
            self.axes[qubit] = -1
            self.signs[qubit] = 0

    def apply_annotation(self, qubit: int, theta: float, phi: float) -> None:
        """``ANNOT(theta, phi)`` re-enters the automaton if the promised
        pure state is one of the six basis states (Fig. 5 ANNOT edge)."""
        self.set_state(qubit, basis_state_of_bloch_tuple(theta, phi))

    def apply_swap(self, a: int, b: int) -> None:
        """SWAP and validated SWAPZ exchange the tracked states (including
        TOP), per Sec. VI-A."""
        self.axes[a], self.axes[b] = self.axes[b], self.axes[a]
        self.signs[a], self.signs[b] = self.signs[b], self.signs[a]

    def copy(self) -> "BasisStateTracker":
        clone = BasisStateTracker(len(self.axes), vectorized=self.vectorized)
        clone.axes = self.axes.copy()
        clone.signs = self.signs.copy()
        return clone
