"""Setup script for the RPO reproduction package.

A classic setup.py (rather than PEP 517 metadata) so that editable installs
work in offline environments without the `wheel` package.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Relaxed Peephole Optimization: A Novel Compiler "
        "Optimization for Quantum Circuits' (CGO 2021)"
    ),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    license="Apache-2.0",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    extras_require={"test": ["pytest>=7", "pytest-benchmark>=4", "hypothesis>=6"]},
)
