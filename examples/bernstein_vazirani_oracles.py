#!/usr/bin/env python3
"""The paper's Fig. 10 case study: boolean vs phase oracles.

The Bernstein-Vazirani boolean oracle flips an ancilla prepared in ``|->``
through one CNOT per secret bit.  QBO statically knows the ancilla state,
so Table I's ``|->``-target rule turns every oracle CNOT into a Z gate --
producing exactly the hand-optimized phase-oracle design.  Standard
unitary-preserving optimization (level 3) cannot do this.
"""

from repro import transpile
from repro.algorithms import bernstein_vazirani_boolean, bernstein_vazirani_phase
from repro.backends import FakeMelbourne
from repro.simulators import StatevectorSimulator


def main():
    secret = 0b101101
    num_qubits = 6
    backend = FakeMelbourne()

    boolean = bernstein_vazirani_boolean(num_qubits, secret)
    phase = bernstein_vazirani_phase(num_qubits, secret)

    print(f"secret = {secret:0{num_qubits}b}\n")
    for label, circuit in [("boolean oracle", boolean), ("phase oracle", phase)]:
        level3 = transpile(circuit.copy(), backend=backend, pipeline="level3", seed=0)
        rpo = transpile(circuit.copy(), backend=backend, pipeline="rpo", seed=0)
        print(f"{label}:")
        print(f"  level 3: {level3.count_ops().get('cx', 0):3d} CNOTs")
        print(f"  RPO    : {rpo.count_ops().get('cx', 0):3d} CNOTs")

    # verify the optimized boolean design still finds the secret
    rpo = transpile(boolean.copy(), backend=backend, pipeline="rpo", seed=0)
    counts = StatevectorSimulator(seed=2).run(rpo, shots=500)
    print(f"\nmost frequent outcome: {counts.most_frequent()} "
          f"(expected {secret:0{num_qubits}b})")


if __name__ == "__main__":
    main()
