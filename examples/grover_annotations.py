#!/usr/bin/env python3
"""Annotations on clean ancillas (paper Sec. VIII-C / Fig. 7 / Table III).

Grover with the V-chain multi-controlled design reuses *clean* ancillas
every iteration.  After the first oracle the analysis conservatively loses
track of them (multi-qubit gates send states to TOP, Sec. VI), so RPO
stops finding rewrites.  ``ANNOT(0, 0)`` promises restore the knowledge and
keep the per-iteration savings coming.
"""

from repro.algorithms import grover_circuit
from repro.backends import FakeMelbourne
from repro.rpo import rpo_pass_manager
from repro.transpiler import level_3_pass_manager
from repro.transpiler.passmanager import PropertySet


def main():
    backend = FakeMelbourne()
    num_qubits = 6

    def transpile(circuit, factory):
        pm = factory(
            backend.coupling_map, backend_properties=backend.properties, seed=0
        )
        return pm.run(circuit.copy(), PropertySet()).count_ops().get("cx", 0)

    print(f"{num_qubits}-qubit Grover, V-chain oracle design\n")
    print("iters  level3   RPO   RPO+annot")
    for iterations in (1, 2, 3, 4):
        plain = grover_circuit(num_qubits, iterations=iterations, design="vchain")
        annotated = grover_circuit(
            num_qubits, iterations=iterations, design="vchain", annotate=True
        )
        level3 = transpile(plain, level_3_pass_manager)
        rpo = transpile(plain, rpo_pass_manager)
        rpo_annot = transpile(annotated, rpo_pass_manager)
        print(f"{iterations:5d}  {level3:6d}  {rpo:4d}  {rpo_annot:9d}")

    print(
        "\nWithout annotations the RPO savings saturate after the first\n"
        "iteration; annotations keep the clean-ancilla knowledge alive."
    )


if __name__ == "__main__":
    main()
