#!/usr/bin/env python3
"""VQE for Max-Cut with the RY hardware-efficient ansatz (paper Sec. VII-B).

Runs the full variational loop on a small graph, then shows what RPO saves
when the optimized ansatz is compiled for a device.
"""

from repro import transpile
from repro.algorithms import ry_ansatz, vqe_maxcut
from repro.backends import FakeMelbourne


def main():
    # a 5-vertex ring plus one chord; max cut = 5
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]
    num_qubits = 5

    print("optimizing the ansatz parameters with COBYLA ...")
    best, parameters, bitstring = vqe_maxcut(
        edges, num_qubits, depth=2, seed=3, maxiter=150
    )
    print(f"best expected cut: {best:.3f}  (partition {bitstring})\n")

    ansatz = ry_ansatz(num_qubits, depth=2, parameters=parameters, measure=True)
    backend = FakeMelbourne()
    for pipeline in ("level3", "rpo"):
        compiled = transpile(ansatz.copy(), backend=backend, pipeline=pipeline, seed=0)
        print(
            f"{pipeline:7s}: {compiled.count_ops().get('cx', 0):3d} CNOTs, "
            f"depth {compiled.depth()}"
        )

    # a parameter sweep is a natural serving workload: a CompileService
    # keeps one worker pool and analysis cache warm across the whole
    # sweep (and across sweeps -- VQE recompiles every iteration), so
    # candidate N+1 reuses everything candidate N computed
    from repro import CompileService

    with CompileService(pipeline="rpo", target=backend.target()) as service:
        sweep = [
            ry_ansatz(num_qubits, depth=2, seed=s, measure=True) for s in range(8)
        ]
        compiled_sweep = service.map(sweep, seeds=list(range(8)))
        stats = service.stats()
    print(
        f"\nsweep: compiled {len(compiled_sweep)} candidate ansatzes through "
        f"the service ({stats['cache_constructions']} matrix constructions "
        f"for {stats['cache_requests']} requests)"
    )


if __name__ == "__main__":
    main()
