#!/usr/bin/env python3
"""Quickstart: build a circuit, transpile it with and without RPO.

Demonstrates the core API surface:

* building circuits with :class:`repro.circuit.QuantumCircuit`;
* applying the paper's QBO pass directly;
* the public ``transpile()`` front-end -- one entry point for the preset
  levels, the RPO pipelines and the Hoare baseline, for single circuits
  and for batches;
* simulating the results to confirm they agree.

Transpile API
-------------

``repro.transpile`` accepts a single circuit or a batch::

    from repro import transpile

    compiled = transpile(circuit, backend=backend, pipeline="rpo", seed=0)

    # batches fan out across a pluggable executor and share one
    # AnalysisCache, so repeated workloads skip most matrix constructions.
    # executor="auto" (default) picks serial/thread/process by batch size,
    # circuit width and host cores; "process" warm-starts workers from the
    # cache's snapshot and merges their deltas back.
    compiled_batch = transpile(
        [circuit_a, circuit_b, circuit_c],
        backend=backend,
        pipeline="rpo",
        seed=[0, 1, 2],
        executor="auto",
    )

    # full_result=True returns TranspileResult objects carrying the
    # property set and structured per-pass metrics (time, gate/depth
    # delta, rewrites applied, fixed-point loop iterations)
    result = transpile(circuit, backend=backend, pipeline="rpo",
                       full_result=True)
    print(result.metrics[0], result.loops)

    # aggregate_batch rolls a batch's metrics into one JSON-ready report
    # (benchmarks/check_regression.py gates CI on these)
    from repro.transpiler import AnalysisCache, aggregate_batch, write_metrics_json

    cache = AnalysisCache()
    results = transpile(
        [circuit_a, circuit_b, circuit_c],
        backend=backend,
        pipeline="rpo",
        analysis_cache=cache,
        full_result=True,
    )
    report = aggregate_batch(results, cache=cache)
    write_metrics_json("metrics.json", report)

Targets and the compile service
-------------------------------

A ``Target`` names the hardware (basis + coupling + calibration) as one
hashable object, and a ``CompileService`` keeps a worker pool and cache
warm across many batches -- the serving path::

    from repro import CompileService, Target

    with CompileService(pipeline="rpo", snapshot_path="cache.snap") as svc:
        # one batch may mix targets; results carry their target
        results = svc.map(circuits, targets=[Target.preset("melbourne"),
                                             Target.preset("linear:8"), ...])
    # __exit__ persists the cache snapshot; the next service run (even in
    # a fresh process) boots warm from cache.snap
"""

from repro import transpile
from repro.circuit import QuantumCircuit
from repro.backends import FakeMelbourne
from repro.rpo import QBOPass
from repro.simulators import StatevectorSimulator
from repro.transpiler.passmanager import PropertySet


def main():
    # A toy circuit with statically known states: qubit 0 stays |0>, qubit 1
    # is put into |1>, qubit 2 into |+>.  RPO can prove all of this.
    circuit = QuantumCircuit(3, 3)
    circuit.x(1)
    circuit.h(2)
    circuit.cx(0, 2)      # control |0>  -> removable
    circuit.cx(1, 2)      # target |+>   -> removable
    circuit.swap(0, 1)    # both known   -> two 1q gates (Table VI)
    circuit.measure_all()

    print("original:")
    print(circuit.draw())

    qbo = QBOPass().run(circuit, PropertySet())
    print("\nafter QBO alone:", qbo.count_ops())

    backend = FakeMelbourne()

    # one front-end for every pipeline
    level3 = transpile(circuit.copy(), backend=backend, optimization_level=3, seed=0)
    rpo_result = transpile(
        circuit.copy(), backend=backend, pipeline="rpo", seed=0, full_result=True
    )
    rpo = rpo_result.circuit

    print(f"\nlevel 3: {level3.count_ops().get('cx', 0)} CNOTs, "
          f"depth {level3.depth()}")
    print(f"RPO    : {rpo.count_ops().get('cx', 0)} CNOTs, depth {rpo.depth()}")
    loop = rpo_result.loops[0]
    print(f"RPO fixed-point loop: {loop.iterations} iterations, "
          f"converged={loop.converged}")

    # batched transpile: the seeds run concurrently and share one
    # AnalysisCache, so the repeats construct almost no new matrices.
    # executor="auto" would promote large batches of wide circuits to a
    # process pool; this little batch stays on threads.
    from repro.transpiler import AnalysisCache, aggregate_batch

    cache = AnalysisCache()
    batch_results = transpile(
        [circuit.copy() for _ in range(3)],
        backend=backend,
        pipeline="rpo",
        seed=[0, 1, 2],
        executor="auto",
        analysis_cache=cache,
        full_result=True,
    )
    print(
        "batched CNOT counts:",
        [r.circuit.count_ops().get("cx", 0) for r in batch_results],
    )

    # the per-pass metrics of the whole batch roll up into one JSON-ready
    # report -- the same shape the CI regression gate diffs
    report = aggregate_batch(batch_results, cache=cache, executor="auto")
    print(
        f"batch: {report['num_circuits']} circuits in "
        f"{report['time']['total'] * 1000:.1f}ms of compile time, "
        f"matrix cache hit rate {report['cache']['matrix_hit_rate']:.0%}"
    )

    # the serving path: a CompileService keeps one pool and cache warm
    # across submissions, and compiles for explicit Targets -- here the
    # same circuit lands on melbourne and on a 15-qubit line in one batch
    from repro import CompileService, Target

    with CompileService(pipeline="rpo") as service:
        hetero = service.map(
            [circuit.copy(), circuit.copy()],
            targets=[Target.from_backend(backend), Target.preset("linear:15")],
            seeds=[0, 0],
        )
        for result in hetero:
            target = result.properties["target"]
            print(
                f"{target.label:20s}: "
                f"{result.circuit.count_ops().get('cx', 0)} CNOTs, "
                f"depth {result.circuit.depth()}"
            )
        stats = service.stats()
    print(
        f"service: {stats['completed']} jobs, "
        f"{stats['cache_requests']} cache requests, "
        f"{stats['cache_constructions']} constructions"
    )

    simulator = StatevectorSimulator(seed=1)
    print("\nlevel3 counts:", dict(simulator.run(level3, shots=1000)))
    print("RPO    counts:", dict(simulator.run(rpo, shots=1000)))


if __name__ == "__main__":
    main()
