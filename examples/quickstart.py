#!/usr/bin/env python3
"""Quickstart: build a circuit, transpile it with and without RPO.

Demonstrates the core API surface:

* building circuits with :class:`repro.circuit.QuantumCircuit`;
* applying the paper's QBO/QPO passes directly;
* running the full level-3 vs RPO pipelines against a fake device;
* simulating the results to confirm they agree.
"""

from repro.circuit import QuantumCircuit
from repro.backends import FakeMelbourne
from repro.rpo import QBOPass, rpo_pass_manager
from repro.simulators import StatevectorSimulator
from repro.transpiler import level_3_pass_manager
from repro.transpiler.passmanager import PropertySet


def main():
    # A toy circuit with statically known states: qubit 0 stays |0>, qubit 1
    # is put into |1>, qubit 2 into |+>.  RPO can prove all of this.
    circuit = QuantumCircuit(3, 3)
    circuit.x(1)
    circuit.h(2)
    circuit.cx(0, 2)      # control |0>  -> removable
    circuit.cx(1, 2)      # target |+>   -> removable
    circuit.swap(0, 1)    # both known   -> two 1q gates (Table VI)
    circuit.measure_all()

    print("original:")
    print(circuit.draw())

    qbo = QBOPass().run(circuit, PropertySet())
    print("\nafter QBO alone:", qbo.count_ops())

    backend = FakeMelbourne()
    level3 = level_3_pass_manager(
        backend.coupling_map, backend_properties=backend.properties, seed=0
    ).run(circuit.copy(), PropertySet())
    rpo = rpo_pass_manager(
        backend.coupling_map, backend_properties=backend.properties, seed=0
    ).run(circuit.copy(), PropertySet())

    print(f"\nlevel 3: {level3.count_ops().get('cx', 0)} CNOTs, "
          f"depth {level3.depth()}")
    print(f"RPO    : {rpo.count_ops().get('cx', 0)} CNOTs, depth {rpo.depth()}")

    simulator = StatevectorSimulator(seed=1)
    print("\nlevel3 counts:", dict(simulator.run(level3, shots=1000)))
    print("RPO    counts:", dict(simulator.run(rpo, shots=1000)))


if __name__ == "__main__":
    main()
