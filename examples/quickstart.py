#!/usr/bin/env python3
"""Quickstart: build a circuit, transpile it with and without RPO.

Demonstrates the core API surface:

* building circuits with :class:`repro.circuit.QuantumCircuit`;
* applying the paper's QBO pass directly;
* the public ``transpile()`` front-end -- one entry point for the preset
  levels, the RPO pipelines and the Hoare baseline, for single circuits
  and for batches;
* simulating the results to confirm they agree.

Transpile API
-------------

``repro.transpile`` accepts a single circuit or a batch::

    from repro import transpile

    compiled = transpile(circuit, backend=backend, pipeline="rpo", seed=0)

    # batches fan out across a worker pool and share one AnalysisCache,
    # so repeated workloads skip most matrix constructions
    compiled_batch = transpile(
        [circuit_a, circuit_b, circuit_c],
        backend=backend,
        pipeline="rpo",
        seed=[0, 1, 2],
    )

    # full_result=True returns TranspileResult objects carrying the
    # property set and structured per-pass metrics (time, gate/depth
    # delta, rewrites applied, fixed-point loop iterations)
    result = transpile(circuit, backend=backend, pipeline="rpo",
                       full_result=True)
    print(result.metrics[0], result.loops)
"""

from repro import transpile
from repro.circuit import QuantumCircuit
from repro.backends import FakeMelbourne
from repro.rpo import QBOPass
from repro.simulators import StatevectorSimulator
from repro.transpiler.passmanager import PropertySet


def main():
    # A toy circuit with statically known states: qubit 0 stays |0>, qubit 1
    # is put into |1>, qubit 2 into |+>.  RPO can prove all of this.
    circuit = QuantumCircuit(3, 3)
    circuit.x(1)
    circuit.h(2)
    circuit.cx(0, 2)      # control |0>  -> removable
    circuit.cx(1, 2)      # target |+>   -> removable
    circuit.swap(0, 1)    # both known   -> two 1q gates (Table VI)
    circuit.measure_all()

    print("original:")
    print(circuit.draw())

    qbo = QBOPass().run(circuit, PropertySet())
    print("\nafter QBO alone:", qbo.count_ops())

    backend = FakeMelbourne()

    # one front-end for every pipeline
    level3 = transpile(circuit.copy(), backend=backend, optimization_level=3, seed=0)
    rpo_result = transpile(
        circuit.copy(), backend=backend, pipeline="rpo", seed=0, full_result=True
    )
    rpo = rpo_result.circuit

    print(f"\nlevel 3: {level3.count_ops().get('cx', 0)} CNOTs, "
          f"depth {level3.depth()}")
    print(f"RPO    : {rpo.count_ops().get('cx', 0)} CNOTs, depth {rpo.depth()}")
    loop = rpo_result.loops[0]
    print(f"RPO fixed-point loop: {loop.iterations} iterations, "
          f"converged={loop.converged}")

    # batched transpile: the seeds run concurrently and share one
    # AnalysisCache, so the repeats construct almost no new matrices
    batch = transpile(
        [circuit.copy() for _ in range(3)],
        backend=backend,
        pipeline="rpo",
        seed=[0, 1, 2],
    )
    print("batched CNOT counts:", [c.count_ops().get("cx", 0) for c in batch])

    simulator = StatevectorSimulator(seed=1)
    print("\nlevel3 counts:", dict(simulator.run(level3, shots=1000)))
    print("RPO    counts:", dict(simulator.run(rpo, shots=1000)))


if __name__ == "__main__":
    main()
