#!/usr/bin/env python3
"""The paper's hardware experiment (Sec. VIII-E / Fig. 11), simulated.

Transpiles 3-qubit QPE at level 3 and with RPO for each of the three
devices, then runs both under each device's Monte-Carlo noise model and
compares the probability of the correct outcome ``111``.
"""

from repro.algorithms import quantum_phase_estimation
from repro.backends import FakeAlmaden, FakeMelbourne, FakeRochester
from repro.rpo import rpo_pass_manager
from repro.simulators import NoiseModel, NoisySimulator, success_rate
from repro.transpiler import level_3_pass_manager
from repro.transpiler.passmanager import PropertySet

SHOTS = 4096


def main():
    circuit = quantum_phase_estimation(3)  # correct answer: 111
    print("3-qubit QPE under device noise\n")
    print(f"{'backend':<12} {'config':<8} {'CNOTs':>5} {'success(111)':>12}")

    for factory in (FakeMelbourne, FakeAlmaden, FakeRochester):
        backend = factory()
        simulator = NoisySimulator(NoiseModel.from_backend(backend), seed=7)
        rates = {}
        for label, pipeline in (
            ("level3", level_3_pass_manager),
            ("rpo", rpo_pass_manager),
        ):
            pm = pipeline(
                backend.coupling_map, backend_properties=backend.properties, seed=0
            )
            from repro.circuit import remove_idle_qubits

            compiled, _ = remove_idle_qubits(pm.run(circuit.copy(), PropertySet()))
            counts = simulator.run(compiled, shots=SHOTS)
            rates[label] = success_rate(counts, "111")
            print(
                f"{backend.name:<12} {label:<8} "
                f"{compiled.count_ops().get('cx', 0):>5} {rates[label]:>12.3f}"
            )
        print(f"{'':<12} improvement: {rates['rpo'] / rates['level3']:.2f}x\n")


if __name__ == "__main__":
    main()
