#!/usr/bin/env python3
"""Remote compilation walkthrough: a client's view of the compile farm.

Compiles a small batch of circuits through a networked
:class:`~repro.server.CompileServer` -- either one you point it at
(``--endpoint``, e.g. one started with ``python -m repro.server``) or,
with no argument, one this script boots itself on a loopback port via
the real ``python -m repro.server`` CLI.  Passing ``--endpoint`` twice
demonstrates shard-aware fan-out through a
:class:`~repro.server.ShardRouter`.

What it shows:

* ``RemoteCompileService`` as a drop-in service: the same ``map()`` call
  (and the same ``transpile(..., service=...)`` front-end) that drives a
  local :class:`~repro.transpiler.CompileService`;
* chunked job envelopes: the whole batch travels in a handful of HTTP
  requests, not one per circuit;
* ``/healthz`` + ``/metrics`` scraping, the operational surface;
* ``--assert-parity``: remote results must be bit-identical to
  ``executor="serial"`` run locally (the CI server-smoke job runs with
  this flag against a real ``python -m repro.server`` process).

Usage::

    python examples/remote_compile.py                      # self-hosted demo
    python examples/remote_compile.py --endpoint http://host:8642
    python examples/remote_compile.py \
        --endpoint http://a:8642 --endpoint http://b:8642  # sharded
"""

import argparse
import os
import socket
import subprocess
import sys
import time
import urllib.request

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.algorithms import quantum_phase_estimation, ry_ansatz
from repro.server import RemoteCompileService, ShardRouter
from repro.transpiler import aggregate_batch, transpile


def build_batch():
    circuits = []
    for width in (3, 4):
        circuits.append(quantum_phase_estimation(width - 1))
        circuits.append(ry_ansatz(width, depth=2, seed=width))
    circuits = circuits * 6  # two dozen jobs: enough for chunking to matter
    return circuits, list(range(len(circuits)))


def boot_local_server() -> tuple[subprocess.Popen, str]:
    """Start ``python -m repro.server`` on a free loopback port."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server",
            "--port",
            str(port),
            "--mode",
            "serial",
            "--pipeline",
            "rpo",
        ],
        env=env,
    )
    endpoint = f"http://127.0.0.1:{port}"
    deadline = time.time() + 30
    while time.time() < deadline:
        try:
            with urllib.request.urlopen(endpoint + "/healthz", timeout=1):
                return process, endpoint
        except OSError:
            if process.poll() is not None:
                raise SystemExit("server process died during start-up")
            time.sleep(0.2)
    process.kill()
    raise SystemExit("server did not come up within 30s")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--endpoint",
        action="append",
        default=None,
        help="compile-server URL; repeat to shard across several "
        "(default: boot a loopback server via python -m repro.server)",
    )
    parser.add_argument(
        "--assert-parity",
        action="store_true",
        help="fail unless remote results are identical to local serial ones",
    )
    args = parser.parse_args(argv)

    circuits, seeds = build_batch()
    owned_process = None
    endpoints = args.endpoint
    if not endpoints:
        owned_process, endpoint = boot_local_server()
        endpoints = [endpoint]
        print(f"booted python -m repro.server on {endpoint}")

    try:
        if len(endpoints) == 1:
            client = RemoteCompileService(endpoints[0])
        else:
            client = ShardRouter(endpoints)
            print(f"sharding across {len(endpoints)} endpoints")
        with client:
            health = (
                client.healthz()
                if isinstance(client, RemoteCompileService)
                else client.shards[0].healthz()
            )
            print(f"healthz: {health['status']} (uptime {health['uptime']:.1f}s)")

            start = time.perf_counter()
            results = client.map(
                [c.copy() for c in circuits],
                targets="melbourne",
                seeds=seeds,
                pipeline="rpo",
            )
            wall = time.perf_counter() - start
            print(
                f"compiled {len(results)} circuits remotely in {wall:.2f}s "
                f"({len(results) / wall:.1f}/s)"
            )
            for result in results[:3]:
                ops = result.circuit.count_ops()
                print(
                    f"  {result.circuit.name}: {result.circuit.size()} gates "
                    f"(cx={ops.get('cx', 0)}), served by "
                    f"{result.properties['shard']}"
                )

            report = aggregate_batch(results, executor="remote")
            for label, entry in report["by_target"].items():
                print(
                    f"by_target[{label}]: {entry['num_circuits']} circuits, "
                    f"shards={entry['shards']}"
                )

            # the drop-in switch: same batch through the transpile()
            # front-end, remote executor
            via_frontend = transpile(
                [c.copy() for c in circuits],
                target="melbourne",
                pipeline="rpo",
                seed=seeds,
                executor="remote",
                endpoint=endpoints if len(endpoints) > 1 else endpoints[0],
            )
            print(f"transpile(executor='remote'): {len(via_frontend)} circuits")

            stats = client.stats()
            if isinstance(client, RemoteCompileService):
                server_side = stats["server"]
                print(
                    f"/metrics: {server_side['requests']} requests carried "
                    f"{server_side['jobs']} jobs "
                    f"(chunked envelopes amortized "
                    f"{server_side['jobs'] - server_side['requests']} dispatches)"
                )
            else:
                print(f"/metrics: jobs routed {stats['jobs_routed']}")

            if args.assert_parity:
                reference = transpile(
                    [c.copy() for c in circuits],
                    target="melbourne",
                    pipeline="rpo",
                    seed=seeds,
                    executor="serial",
                )
                for index, (expected, result) in enumerate(zip(reference, results)):
                    got = result.circuit
                    same = len(expected.data) == len(got.data) and all(
                        a.operation.name == b.operation.name
                        and a.qubits == b.qubits
                        for a, b in zip(expected.data, got.data)
                    )
                    if not same:
                        raise SystemExit(
                            f"parity violated: circuit {index} differs remotely"
                        )
                print("parity: remote results identical to local serial transpile")
    finally:
        if owned_process is not None:
            try:
                RemoteCompileService(endpoints[0]).shutdown_server()
                owned_process.wait(timeout=15)
                print(f"server exited cleanly ({owned_process.returncode})")
            except Exception:
                owned_process.kill()


if __name__ == "__main__":
    main()
