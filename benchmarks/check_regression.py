#!/usr/bin/env python3
"""CI regression gate: diff a metrics report against the checked-in baseline.

Compares the report written by ``bench_table2_main.py --quick --metrics-json``
against ``benchmarks/baseline_quick.json`` and exits non-zero when either

* an optimized gate count (``cx`` / ``1q``) of any benchmark row regresses
  more than the tolerance (default 20%), or
* a pipeline's mean transpile time, *normalized by the same run's level3
  mean* so machine speed cancels out, regresses more than the tolerance.

With ``--executors REPORT.json`` (the report written by
``bench_executors.py --metrics-json``) the gate additionally checks
**service-mode throughput**: the persistent ``CompileService`` must not
fall behind per-call process pools by more than ``--service-tolerance``,
and the disk-snapshot warm-start must raise the cache hit-rate.

Refreshing the baseline after an intentional change::

    python benchmarks/bench_table2_main.py --quick \
        --metrics-json benchmarks/baseline_quick.json

Usage::

    python benchmarks/check_regression.py CURRENT.json [BASELINE.json] \
        [--executors EXECUTORS.json]
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.transpiler import compare_metrics, load_metrics_json

DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__), "baseline_quick.json")


def check_service_throughput(report: dict, tolerance: float) -> list[str]:
    """Service-mode gates over a ``bench_executors.py`` metrics report.

    * the persistent service's total wall must be <= per-call process
      pools' wall * (1 + tolerance) -- i.e. service throughput must be at
      least per-call throughput, modulo timing noise;
    * the snapshot warm-start hit-rate must exceed the cold hit-rate.
    """
    failures: list[str] = []
    walls = report.get("wall_times", {})
    service = walls.get("service")
    per_call = walls.get("process_per_call")
    if service is None or per_call is None:
        failures.append(
            "executors report lacks service/process_per_call wall times; "
            "run bench_executors.py with --metrics-json"
        )
    elif service > per_call * (1.0 + tolerance):
        failures.append(
            f"service wall {service:.2f}s exceeds per-call process pools "
            f"{per_call:.2f}s by more than {tolerance:.0%}"
        )
    warm = report.get("snapshot_warm_start", {})
    cold_rate = warm.get("cold_hit_rate")
    warm_rate = warm.get("warm_hit_rate")
    if cold_rate is None or warm_rate is None:
        failures.append("executors report lacks snapshot warm-start hit rates")
    elif warm_rate <= cold_rate:
        failures.append(
            f"snapshot warm-start did not raise the cache hit-rate "
            f"(cold {cold_rate:.1%}, warm {warm_rate:.1%})"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="metrics JSON produced by this run")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=DEFAULT_BASELINE,
        help=f"baseline metrics JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--gate-tolerance",
        type=float,
        default=0.20,
        help="allowed relative growth of optimized gate counts (default 0.20)",
    )
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=0.20,
        help="allowed relative growth of normalized mean transpile time "
        "(default 0.20)",
    )
    parser.add_argument(
        "--executors",
        metavar="PATH",
        help="bench_executors.py metrics report; enables the service-mode "
        "throughput and snapshot warm-start gates",
    )
    parser.add_argument(
        "--service-tolerance",
        type=float,
        default=0.10,
        help="allowed service wall-clock excess over per-call process pools "
        "(default 0.10)",
    )
    args = parser.parse_args(argv)

    current = load_metrics_json(args.current)
    baseline = load_metrics_json(args.baseline)
    failures = compare_metrics(
        current,
        baseline,
        gate_tolerance=args.gate_tolerance,
        time_tolerance=args.time_tolerance,
    )
    if args.executors:
        failures += check_service_throughput(
            load_metrics_json(args.executors), args.service_tolerance
        )
    if failures:
        print(f"REGRESSIONS vs {args.baseline}:")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)
    rows = len(current.get("rows", []))
    checked = " (+ service throughput)" if args.executors else ""
    print(
        f"regression gate passed: {rows} rows within tolerance of baseline"
        f"{checked}"
    )


if __name__ == "__main__":
    main()
