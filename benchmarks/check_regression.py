#!/usr/bin/env python3
"""CI regression gate: diff a metrics report against the checked-in baseline.

Compares the report written by ``bench_table2_main.py --quick --metrics-json``
against ``benchmarks/baseline_quick.json`` and exits non-zero when either

* an optimized gate count (``cx`` / ``1q``) of any benchmark row regresses
  more than the tolerance (default 20%), or
* a pipeline's mean transpile time, *normalized by the same run's level3
  mean* so machine speed cancels out, regresses more than the tolerance.

With ``--executors REPORT.json`` (the report written by
``bench_executors.py --metrics-json``) the gate additionally checks
**service-mode throughput**: the persistent ``CompileService`` must not
fall behind per-call process pools by more than ``--service-tolerance``,
and the disk-snapshot warm-start must raise the cache hit-rate.

With ``--server REPORT.json`` (the report written by
``bench_server.py --metrics-json``) the gate checks the **networked
path**: loopback-remote chunked throughput must stay within
``--server-wire-tolerance`` (default 1.0, i.e. within 2x) of the
in-process service, and chunked dispatch must beat
one-request-per-circuit.

With ``--kernels REPORT.json`` (the report written by
``bench_kernels.py --metrics-json``) the gate checks the **batched
numeric kernels**: stacked-operand block consolidation must beat the
per-block serial path by at least ``--kernels-min-speedup`` (default
1.5x).

With ``--result-cache REPORT.json`` (the report written by
``bench_result_cache.py --metrics-json``) the gate checks the
**compiled-result cache**: a warm repeat of a batch must beat the cold
compile by at least ``--result-cache-min-speedup`` (default 5x), every
warm job must actually hit, and the template path must have learned and
re-bound.

With ``--sim REPORT.json`` (the report written by
``bench_sim.py --metrics-json``) the gate checks the **backend-resident
simulation + vectorized analysis lane**: the fused backend-resident
statevector must beat the naive per-gate host loop by at least
``--sim-min-speedup`` (default 2x), the stacked trackers must agree with
the scalar automata (basis bit-identical, pure within 1e-12), the
vectorized Hoare optimizer must emit identical circuits, and the QBO/QPO
pass outputs must be tracker-implementation-independent.

Any report flag may be used without the positional table report (the
server-smoke CI job gates on the server report alone).

Refreshing the baseline after an intentional change::

    python benchmarks/bench_table2_main.py --quick \
        --metrics-json benchmarks/baseline_quick.json

Usage::

    python benchmarks/check_regression.py CURRENT.json [BASELINE.json] \
        [--executors EXECUTORS.json]
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.transpiler import compare_metrics, load_metrics_json

DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__), "baseline_quick.json")


def check_service_throughput(report: dict, tolerance: float) -> list[str]:
    """Service-mode gates over a ``bench_executors.py`` metrics report.

    * the persistent service's total wall must be <= per-call process
      pools' wall * (1 + tolerance) -- i.e. service throughput must be at
      least per-call throughput, modulo timing noise;
    * the snapshot warm-start hit-rate must exceed the cold hit-rate.
    """
    failures: list[str] = []
    walls = report.get("wall_times", {})
    service = walls.get("service")
    per_call = walls.get("process_per_call")
    if service is None or per_call is None:
        failures.append(
            "executors report lacks service/process_per_call wall times; "
            "run bench_executors.py with --metrics-json"
        )
    elif service > per_call * (1.0 + tolerance):
        failures.append(
            f"service wall {service:.2f}s exceeds per-call process pools "
            f"{per_call:.2f}s by more than {tolerance:.0%}"
        )
    warm = report.get("snapshot_warm_start", {})
    cold_rate = warm.get("cold_hit_rate")
    warm_rate = warm.get("warm_hit_rate")
    if cold_rate is None or warm_rate is None:
        failures.append("executors report lacks snapshot warm-start hit rates")
    elif warm_rate <= cold_rate:
        failures.append(
            f"snapshot warm-start did not raise the cache hit-rate "
            f"(cold {cold_rate:.1%}, warm {warm_rate:.1%})"
        )
    return failures


def check_server_throughput(report: dict, wire_tolerance: float) -> list[str]:
    """Networked-path gates over a ``bench_server.py`` metrics report.

    * chunked dispatch must beat one-request-per-circuit (the whole point
      of chunked job envelopes);
    * loopback-remote chunked wall must be <= in-process service wall *
      (1 + wire_tolerance) -- the wire tax is bounded (2x by default).
    """
    failures: list[str] = []
    walls = report.get("wall_times", {})
    inprocess = walls.get("inprocess")
    chunked = walls.get("remote_chunked")
    per_circuit = walls.get("remote_per_circuit")
    if inprocess is None or chunked is None or per_circuit is None:
        return [
            "server report lacks inprocess/remote_chunked/remote_per_circuit "
            "wall times; run bench_server.py with --metrics-json"
        ]
    if chunked >= per_circuit:
        failures.append(
            f"chunked remote dispatch ({chunked:.2f}s) did not beat "
            f"one-request-per-circuit ({per_circuit:.2f}s)"
        )
    if chunked > inprocess * (1.0 + wire_tolerance):
        failures.append(
            f"loopback-remote chunked wall {chunked:.2f}s exceeds in-process "
            f"service {inprocess:.2f}s by more than {wire_tolerance:.0%}"
        )
    return failures


def check_kernel_speedup(report: dict, min_speedup: float) -> list[str]:
    """Batched-kernel gate over a ``bench_kernels.py`` metrics report.

    The batched block-consolidation stage (all block unitaries in one
    stacked reduction) must beat the serial per-block accumulation by at
    least ``min_speedup``; the 1q-run stage must at least not be slower.
    """
    failures: list[str] = []
    kernels = report.get("kernels", {})
    consolidation = kernels.get("consolidation", {})
    speedup = consolidation.get("speedup")
    if speedup is None:
        return [
            "kernels report lacks the consolidation speedup; run "
            "bench_kernels.py with --metrics-json"
        ]
    if speedup < min_speedup:
        failures.append(
            f"batched block consolidation speedup {speedup:.2f}x fell below "
            f"the required {min_speedup:.2f}x"
        )
    runs1q = kernels.get("runs1q", {}).get("speedup")
    if runs1q is not None and runs1q < 1.0:
        failures.append(
            f"batched 1q-run merging ({runs1q:.2f}x) is slower than the "
            f"serial path"
        )
    return failures


def check_result_cache(report: dict, min_speedup: float) -> list[str]:
    """Result-cache gates over a ``bench_result_cache.py`` metrics report.

    * warm exact hits must beat cold compilation by >= ``min_speedup``;
    * every warm job must have been served from the cache;
    * the template path must have learned a template and re-bound with it.
    """
    failures: list[str] = []
    cache = report.get("result_cache", {})
    exact = cache.get("exact", {})
    speedup = exact.get("speedup")
    if speedup is None:
        return [
            "result-cache report lacks the warm-hit speedup; run "
            "bench_result_cache.py with --metrics-json"
        ]
    if speedup < min_speedup:
        failures.append(
            f"warm result-cache hits ({speedup:.2f}x) fell below the "
            f"required {min_speedup:.2f}x over cold compiles"
        )
    if exact.get("hits", 0) < exact.get("jobs", 0):
        failures.append(
            f"warm repeat served only {exact.get('hits', 0)} cache hits "
            f"for {exact.get('jobs', 0)} jobs"
        )
    template = cache.get("template", {})
    if template.get("templates_learned", 0) < 1:
        failures.append("result cache never learned a parameterized template")
    elif template.get("template_hits", 0) < 1:
        failures.append(
            "result cache learned a template but served no template hits"
        )
    return failures


def check_sim(report: dict, min_speedup: float) -> list[str]:
    """Simulation-lane gates over a ``bench_sim.py`` metrics report.

    * the fused backend-resident statevector must beat the naive
      per-gate host loop by >= ``min_speedup`` and agree to 1e-10;
    * the stacked basis tracker must be bit-identical to the scalar
      automaton and the stacked pure tracker within 1e-12;
    * the vectorized Hoare optimizer must produce identical circuits
      and must not be slower than the scalar transformers;
    * QBO/QPO pass outputs must not depend on the tracker implementation.
    """
    failures: list[str] = []
    sim = report.get("sim", {})
    statevector = sim.get("statevector", {})
    speedup = statevector.get("speedup")
    if speedup is None:
        return [
            "sim report lacks the statevector speedup; run bench_sim.py "
            "with --metrics-json"
        ]
    if speedup < min_speedup:
        failures.append(
            f"backend-resident statevector speedup {speedup:.2f}x fell "
            f"below the required {min_speedup:.2f}x"
        )
    max_error = statevector.get("max_error")
    if max_error is None or max_error > 1e-10:
        failures.append(
            f"fused statevector drifted from the naive per-gate loop "
            f"(max error {max_error})"
        )
    trackers = sim.get("trackers", {})
    basis = trackers.get("basis", {})
    if not basis.get("parity"):
        failures.append("stacked basis tracker diverged from the scalar automaton")
    pure = trackers.get("pure", {})
    if not pure.get("parity"):
        failures.append("stacked pure tracker diverged from the scalar automaton")
    pure_error = pure.get("max_error")
    if pure_error is not None and pure_error > 1e-12:
        failures.append(
            f"stacked pure-tracker tuples drifted beyond 1e-12 "
            f"(max error {pure_error})"
        )
    hoare = sim.get("hoare", {})
    if not hoare.get("parity"):
        failures.append(
            "vectorized Hoare optimizer emitted a different circuit than "
            "the scalar transformers"
        )
    hoare_speedup = hoare.get("speedup")
    if hoare_speedup is not None and hoare_speedup < 0.9:
        failures.append(
            f"vectorized Hoare transformers ({hoare_speedup:.2f}x) are "
            f"slower than the scalar path"
        )
    passes = sim.get("passes", {})
    for key in ("qbo_identical", "qpo_identical"):
        if not passes.get(key):
            failures.append(
                f"{key.split('_')[0].upper()} pass output depends on the "
                f"tracker implementation (scalar vs vectorized)"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "current",
        nargs="?",
        default=None,
        help="metrics JSON produced by this run (optional when only "
        "--executors / --server gates are requested)",
    )
    parser.add_argument(
        "baseline",
        nargs="?",
        default=DEFAULT_BASELINE,
        help=f"baseline metrics JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--gate-tolerance",
        type=float,
        default=0.20,
        help="allowed relative growth of optimized gate counts (default 0.20)",
    )
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=0.20,
        help="allowed relative growth of normalized mean transpile time "
        "(default 0.20)",
    )
    parser.add_argument(
        "--executors",
        metavar="PATH",
        help="bench_executors.py metrics report; enables the service-mode "
        "throughput and snapshot warm-start gates",
    )
    parser.add_argument(
        "--service-tolerance",
        type=float,
        default=0.10,
        help="allowed service wall-clock excess over per-call process pools "
        "(default 0.10)",
    )
    parser.add_argument(
        "--server",
        metavar="PATH",
        help="bench_server.py metrics report; enables the networked-path "
        "gates (chunked beats per-circuit, wire tax within tolerance)",
    )
    parser.add_argument(
        "--server-wire-tolerance",
        type=float,
        default=1.0,
        help="allowed loopback-remote wall-clock excess over the in-process "
        "service (default 1.0 = within 2x)",
    )
    parser.add_argument(
        "--kernels",
        metavar="PATH",
        help="bench_kernels.py metrics report; enables the batched-kernel "
        "speedup gate",
    )
    parser.add_argument(
        "--kernels-min-speedup",
        type=float,
        default=1.5,
        help="required batched-vs-serial block consolidation speedup "
        "(default 1.5)",
    )
    parser.add_argument(
        "--result-cache",
        metavar="PATH",
        help="bench_result_cache.py metrics report; enables the warm-hit "
        "speedup and template-learning gates",
    )
    parser.add_argument(
        "--result-cache-min-speedup",
        type=float,
        default=5.0,
        help="required warm-hit speedup over cold compilation (default 5.0)",
    )
    parser.add_argument(
        "--sim",
        metavar="PATH",
        help="bench_sim.py metrics report; enables the backend-resident "
        "simulation speedup and vectorized-analysis parity gates",
    )
    parser.add_argument(
        "--sim-min-speedup",
        type=float,
        default=2.0,
        help="required backend-resident statevector speedup over the naive "
        "per-gate host loop (default 2.0)",
    )
    args = parser.parse_args(argv)
    if args.current is None and not (
        args.executors or args.server or args.kernels or args.result_cache or args.sim
    ):
        parser.error(
            "need a metrics report (positional) or "
            "--executors/--server/--kernels/--result-cache/--sim"
        )

    failures: list[str] = []
    rows = 0
    if args.current is not None:
        current = load_metrics_json(args.current)
        baseline = load_metrics_json(args.baseline)
        failures += compare_metrics(
            current,
            baseline,
            gate_tolerance=args.gate_tolerance,
            time_tolerance=args.time_tolerance,
        )
        rows = len(current.get("rows", []))
    if args.executors:
        failures += check_service_throughput(
            load_metrics_json(args.executors), args.service_tolerance
        )
    if args.server:
        failures += check_server_throughput(
            load_metrics_json(args.server), args.server_wire_tolerance
        )
    if args.kernels:
        failures += check_kernel_speedup(
            load_metrics_json(args.kernels), args.kernels_min_speedup
        )
    if args.result_cache:
        failures += check_result_cache(
            load_metrics_json(args.result_cache), args.result_cache_min_speedup
        )
    if args.sim:
        failures += check_sim(load_metrics_json(args.sim), args.sim_min_speedup)
    if failures:
        print(f"REGRESSIONS vs {args.baseline}:")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)
    checked = ""
    if args.executors:
        checked += " (+ service throughput)"
    if args.server:
        checked += " (+ server loopback throughput)"
    if args.kernels:
        checked += " (+ batched-kernel speedup)"
    if args.result_cache:
        checked += " (+ result-cache warm-hit speedup)"
    if args.sim:
        checked += " (+ backend-resident simulation speedup)"
    print(
        f"regression gate passed: {rows} rows within tolerance of baseline"
        f"{checked}"
    )


if __name__ == "__main__":
    main()
