#!/usr/bin/env python3
"""CI regression gate: diff a metrics report against the checked-in baseline.

Compares the report written by ``bench_table2_main.py --quick --metrics-json``
against ``benchmarks/baseline_quick.json`` and exits non-zero when either

* an optimized gate count (``cx`` / ``1q``) of any benchmark row regresses
  more than the tolerance (default 20%), or
* a pipeline's mean transpile time, *normalized by the same run's level3
  mean* so machine speed cancels out, regresses more than the tolerance.

Refreshing the baseline after an intentional change::

    python benchmarks/bench_table2_main.py --quick \
        --metrics-json benchmarks/baseline_quick.json

Usage::

    python benchmarks/check_regression.py CURRENT.json [BASELINE.json]
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.transpiler import compare_metrics, load_metrics_json

DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__), "baseline_quick.json")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="metrics JSON produced by this run")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=DEFAULT_BASELINE,
        help=f"baseline metrics JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--gate-tolerance",
        type=float,
        default=0.20,
        help="allowed relative growth of optimized gate counts (default 0.20)",
    )
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=0.20,
        help="allowed relative growth of normalized mean transpile time "
        "(default 0.20)",
    )
    args = parser.parse_args(argv)

    current = load_metrics_json(args.current)
    baseline = load_metrics_json(args.baseline)
    failures = compare_metrics(
        current,
        baseline,
        gate_tolerance=args.gate_tolerance,
        time_tolerance=args.time_tolerance,
    )
    if failures:
        print(f"REGRESSIONS vs {args.baseline}:")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)
    rows = len(current.get("rows", []))
    print(f"regression gate passed: {rows} rows within tolerance of baseline")


if __name__ == "__main__":
    main()
