#!/usr/bin/env python3
"""Batched-kernel shoot-out: stacked-operand reductions vs per-matrix loops.

Measures the numeric stages that PR'd batched kernels replaced, on blocks
and runs collected from the Table-II workloads:

* **consolidation** -- every two-qubit block unitary of the workload set,
  serial (``embed_gate`` + matmul per gate, one block at a time) vs
  batched (:func:`repro.linalg.batch.two_qubit_chain_unitaries` over all
  blocks at once).  This is the stage ``ConsolidateBlocks`` runs per
  transpilation and the one ``check_regression.py --kernels`` gates.
* **runs1q** -- all single-qubit run products + Euler extractions, serial
  vs batched (:func:`chain_products` + :func:`u3_params_batch`), the
  ``Optimize1qGates`` stage.
* **fusion** -- statevector simulation wall with and without the gate
  fusion pre-step (informational).

Usage::

    python benchmarks/bench_kernels.py --quick --metrics-json REPORT.json
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.algorithms import (
    grover_circuit,
    quantum_phase_estimation,
    quantum_volume_circuit,
    ry_ansatz,
)
from repro.circuit.matrix_utils import embed_gate
from repro.linalg.batch import chain_products, two_qubit_chain_unitaries, u3_params_batch
from repro.linalg.euler import u3_params_from_unitary
from repro.simulators import StatevectorSimulator
from repro.transpiler import AnalysisCache, write_metrics_json
from repro.transpiler.passes import ConsolidateBlocks


def workloads(quick: bool):
    sizes = [4, 6, 8] if quick else [4, 6, 8, 10, 12]
    for n in sizes:
        yield f"qpe-{n}", quantum_phase_estimation(n - 1)
        yield f"vqe-{n}", ry_ansatz(n, depth=3, seed=11)
        yield f"qv-{n}", quantum_volume_circuit(n, seed=5)
        yield f"grover-{n}", grover_circuit(n, design="noancilla")


def collect_blocks(circuits) -> list:
    """All two-qubit blocks the consolidation pass would accumulate."""
    collector = ConsolidateBlocks()
    blocks = []
    for circuit in circuits:
        for kind, payload, _, _ in collector.collect(circuit):
            if kind == "block":
                blocks.append(payload)
    return blocks


def collect_1q_runs(circuits, cache: AnalysisCache) -> list[list[np.ndarray]]:
    """Matrix chains of every single-qubit run, as Optimize1qGates sees them."""
    chains: list[list[np.ndarray]] = []
    for circuit in circuits:
        pending: dict[int, list[np.ndarray]] = {}
        for instruction in circuit.data:
            operation = instruction.operation
            if (
                operation.is_gate()
                and operation.num_qubits == 1
                and not operation.is_directive
            ):
                pending.setdefault(instruction.qubits[0], []).append(
                    cache.matrix(operation)
                )
                continue
            for qubit in instruction.qubits:
                if qubit in pending:
                    chains.append(pending.pop(qubit))
        chains.extend(pending.values())
    return chains


def best_of(repeats: int, func) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def bench_consolidation(blocks, cache: AnalysisCache, repeats: int) -> dict:
    def serial():
        for block in blocks:
            matrix = np.eye(4, dtype=complex)
            for instruction in block.instructions:
                local = block.local_wires(instruction)
                matrix = embed_gate(cache.matrix(instruction.operation), local, 2) @ matrix

    def batched():
        chains = []
        for block in blocks:
            matrices = cache.matrices(
                instruction.operation for instruction in block.instructions
            )
            chains.append(
                [
                    (matrix, block.local_wires(instruction))
                    for matrix, instruction in zip(matrices, block.instructions)
                ]
            )
        two_qubit_chain_unitaries(chains)

    serial()  # warm the matrix cache so both paths time pure numeric work
    serial_time = best_of(repeats, serial)
    batched_time = best_of(repeats, batched)
    return {
        "blocks": len(blocks),
        "gates": sum(len(block.instructions) for block in blocks),
        "serial_s": serial_time,
        "batched_s": batched_time,
        "speedup": serial_time / batched_time if batched_time > 0 else float("inf"),
    }


def bench_1q_runs(chains, repeats: int) -> dict:
    def serial():
        for chain in chains:
            matrix = np.eye(2, dtype=complex)
            for gate in chain:
                matrix = gate @ matrix
            u3_params_from_unitary(matrix)

    def batched():
        u3_params_batch(chain_products(chains, 2))

    serial_time = best_of(repeats, serial)
    batched_time = best_of(repeats, batched)
    return {
        "runs": len(chains),
        "gates": sum(len(chain) for chain in chains),
        "serial_s": serial_time,
        "batched_s": batched_time,
        "speedup": serial_time / batched_time if batched_time > 0 else float("inf"),
    }


def strip_measurements(circuit):
    stripped = circuit.copy_empty_like()
    for instruction in circuit.data:
        if instruction.operation.name in ("measure", "reset"):
            continue
        stripped.append(instruction.operation, instruction.qubits, instruction.clbits)
    return stripped


def bench_fusion(circuits, repeats: int) -> dict:
    circuits = [strip_measurements(circuit) for circuit in circuits]
    fused = StatevectorSimulator(fusion=True)
    plain = StatevectorSimulator(fusion=False)

    def run(simulator):
        def body():
            for circuit in circuits:
                simulator.statevector(circuit)

        return body

    plain_time = best_of(repeats, run(plain))
    fused_time = best_of(repeats, run(fused))
    return {
        "circuits": len(circuits),
        "serial_s": plain_time,
        "batched_s": fused_time,
        "speedup": plain_time / fused_time if fused_time > 0 else float("inf"),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sizes (CI)")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--metrics-json", metavar="PATH", help="write a report")
    args = parser.parse_args(argv)

    named = list(workloads(args.quick))
    circuits = [circuit for _, circuit in named]
    cache = AnalysisCache()

    blocks = collect_blocks(circuits)
    consolidation = bench_consolidation(blocks, cache, args.repeats)
    chains = collect_1q_runs(circuits, cache)
    runs1q = bench_1q_runs(chains, args.repeats)
    sim_circuits = [c for _, c in named if c.num_qubits <= 10]
    fusion = bench_fusion(sim_circuits, max(1, args.repeats - 1))

    report = {
        "workloads": [name for name, _ in named],
        "kernels": {
            "consolidation": consolidation,
            "runs1q": runs1q,
            "fusion": fusion,
        },
    }

    print(f"{'stage':<16} {'work':>14} {'serial':>10} {'batched':>10} {'speedup':>8}")
    for stage, entry in report["kernels"].items():
        work = entry.get("gates", entry.get("circuits"))
        print(
            f"{stage:<16} {work:>14} {entry['serial_s']:>9.4f}s "
            f"{entry['batched_s']:>9.4f}s {entry['speedup']:>7.2f}x"
        )

    if args.metrics_json:
        write_metrics_json(args.metrics_json, report)
        print(f"wrote {args.metrics_json}")


if __name__ == "__main__":
    main()
