"""Table V (Appendix E): single-qubit gate count and circuit depth of the
four benchmark algorithms on FakeMelbourne.

Expected shape: both metrics improve (or stay equal) under RPO.
"""

import pytest

from repro.backends import FakeMelbourne

from .bench_table2_main import make_workload
from .common import FULL, run_once, transpile_stats

SIZES = [4, 6, 8, 10, 12, 14] if FULL else [4, 6]


@pytest.fixture(scope="module")
def melbourne():
    return FakeMelbourne()


@pytest.mark.parametrize("config", ["level3", "hoare", "rpo"])
@pytest.mark.parametrize("workload", ["qpe", "vqe", "qv", "grover"])
@pytest.mark.parametrize("num_qubits", SIZES)
def test_table5(benchmark, melbourne, workload, num_qubits, config):
    if workload == "grover" and num_qubits > 8 and not FULL:
        pytest.skip("large Grover circuits only in REPRO_FULL mode")
    circuit = make_workload(workload, num_qubits)
    benchmark.pedantic(
        run_once, args=(config, circuit, melbourne), rounds=1, iterations=1
    )
    stats = transpile_stats(config, circuit, melbourne)
    benchmark.extra_info.update(
        {"workload": workload, "qubits": num_qubits, "config": config,
         "1q": stats["1q"], "depth": stats["depth"]}
    )


def test_depth_and_1q_improve(melbourne):
    circuit = make_workload("qpe", 6)
    level3 = transpile_stats("level3", circuit, melbourne)
    rpo = transpile_stats("rpo", circuit, melbourne)
    assert rpo["depth"] <= level3["depth"]
    assert rpo["1q"] <= level3["1q"] + 2  # small slack: bracket gates
