"""Table II: CNOT count and transpile time of the four benchmark algorithms
on FakeMelbourne, level 3 vs Hoare vs RPO (paper Sec. VIII-B).

The timed unit is one full transpilation; CNOT/1q/depth medians are attached
as ``extra_info``.  Run ``python benchmarks/run_paper_tables.py`` for the
paper-formatted rows.
"""

import pytest

from repro.algorithms import (
    grover_circuit,
    quantum_phase_estimation,
    quantum_volume_circuit,
    ry_ansatz,
)
from repro.backends import FakeMelbourne

try:
    from .common import (
        FULL,
        batch_metrics_report,
        mean_time_by_config,
        print_table,
        run_once,
        transpile_stats,
    )
except ImportError:  # executed as a script: benchmarks/ is on sys.path
    from common import (
        FULL,
        batch_metrics_report,
        mean_time_by_config,
        print_table,
        run_once,
        transpile_stats,
    )

SIZES = [4, 6, 8, 10, 12, 14] if FULL else [4, 6, 8]
CONFIG_NAMES = ["level3", "hoare", "rpo"]


def make_workload(name: str, num_qubits: int):
    if name == "qpe":
        return quantum_phase_estimation(num_qubits - 1)
    if name == "vqe":
        return ry_ansatz(num_qubits, depth=3, seed=11)
    if name == "qv":
        return quantum_volume_circuit(num_qubits, seed=5)
    if name == "grover":
        return grover_circuit(num_qubits, design="noancilla")
    raise ValueError(name)


@pytest.fixture(scope="module")
def melbourne():
    return FakeMelbourne()


@pytest.mark.parametrize("config", CONFIG_NAMES)
@pytest.mark.parametrize("workload", ["qpe", "vqe", "qv", "grover"])
@pytest.mark.parametrize("num_qubits", SIZES)
def test_table2(benchmark, melbourne, workload, num_qubits, config):
    if workload == "grover" and num_qubits > 8 and not FULL:
        pytest.skip("large Grover circuits only in REPRO_FULL mode")
    circuit = make_workload(workload, num_qubits)
    benchmark.pedantic(
        run_once, args=(config, circuit, melbourne), rounds=2, iterations=1
    )
    stats = transpile_stats(config, circuit, melbourne)
    benchmark.extra_info.update(
        {"workload": workload, "qubits": num_qubits, "config": config, **stats}
    )


def main(argv=None):
    """Script entry point; ``--quick`` runs a CI smoke subset (one size,
    one seed per configuration).  ``--metrics-json PATH`` additionally
    writes a machine-readable report: the per-row stats, per-config mean
    times, and the batched (shared-cache) metrics the CI regression gate
    (``benchmarks/check_regression.py``) diffs against
    ``benchmarks/baseline_quick.json``."""
    import argparse

    from repro.transpiler import EXECUTORS, write_metrics_json
    from repro.transpiler.metrics import METRICS_SCHEMA_VERSION

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: 4-qubit workloads, a single routing seed",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="write the aggregated metrics report to PATH as JSON",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="auto",
        help="executor backend for the batched (shared-cache) measurement",
    )
    args = parser.parse_args(argv)

    sizes = [4] if args.quick else SIZES
    num_seeds = 1 if args.quick else None
    backend = FakeMelbourne()
    rows = []
    display_rows = []
    for workload in ("qpe", "vqe", "qv", "grover"):
        for num_qubits in sizes:
            circuit = make_workload(workload, num_qubits)
            for config in CONFIG_NAMES:
                stats = transpile_stats(config, circuit, backend, num_seeds=num_seeds)
                rows.append(
                    {
                        "workload": workload,
                        "qubits": num_qubits,
                        "config": config,
                        **stats,
                    }
                )
                display_rows.append(
                    [
                        workload,
                        num_qubits,
                        config,
                        stats["cx"],
                        stats["1q"],
                        stats["depth"],
                        f"{stats['time'] * 1000:.1f}ms",
                    ]
                )
    print_table(
        "Table II (melbourne)",
        ["workload", "qubits", "config", "cx", "1q", "depth", "time"],
        display_rows,
    )

    if args.metrics_json:
        circuits = [
            make_workload(workload, num_qubits)
            for workload in ("qpe", "vqe", "qv", "grover")
            for num_qubits in sizes
        ]
        # under --executor service, all three configs share one persistent
        # CompileService (and its warm pool + cache) instead of paying a
        # per-call pool spin-up each
        service = None
        if args.executor == "service":
            from repro.transpiler import CompileService

            service = CompileService(target=backend.target())
        try:
            batched = {
                config: batch_metrics_report(
                    config,
                    circuits,
                    backend,
                    executor=args.executor,
                    service=service,
                )
                for config in CONFIG_NAMES
            }
        finally:
            if service is not None:
                service.shutdown()
        report = {
            "schema": METRICS_SCHEMA_VERSION,
            "suite": "table2_quick" if args.quick else "table2",
            "quick": args.quick,
            "rows": rows,
            "mean_time_by_config": mean_time_by_config(rows),
            "batched": batched,
        }
        write_metrics_json(args.metrics_json, report)
        print(f"\nmetrics written to {args.metrics_json}")


if __name__ == "__main__":
    main()
