"""Table II: CNOT count and transpile time of the four benchmark algorithms
on FakeMelbourne, level 3 vs Hoare vs RPO (paper Sec. VIII-B).

The timed unit is one full transpilation; CNOT/1q/depth medians are attached
as ``extra_info``.  Run ``python benchmarks/run_paper_tables.py`` for the
paper-formatted rows.
"""

import pytest

from repro.algorithms import (
    grover_circuit,
    quantum_phase_estimation,
    quantum_volume_circuit,
    ry_ansatz,
)
from repro.backends import FakeMelbourne

from .common import FULL, run_once, transpile_stats

SIZES = [4, 6, 8, 10, 12, 14] if FULL else [4, 6, 8]
CONFIG_NAMES = ["level3", "hoare", "rpo"]


def make_workload(name: str, num_qubits: int):
    if name == "qpe":
        return quantum_phase_estimation(num_qubits - 1)
    if name == "vqe":
        return ry_ansatz(num_qubits, depth=3, seed=11)
    if name == "qv":
        return quantum_volume_circuit(num_qubits, seed=5)
    if name == "grover":
        return grover_circuit(num_qubits, design="noancilla")
    raise ValueError(name)


@pytest.fixture(scope="module")
def melbourne():
    return FakeMelbourne()


@pytest.mark.parametrize("config", CONFIG_NAMES)
@pytest.mark.parametrize("workload", ["qpe", "vqe", "qv", "grover"])
@pytest.mark.parametrize("num_qubits", SIZES)
def test_table2(benchmark, melbourne, workload, num_qubits, config):
    if workload == "grover" and num_qubits > 8 and not FULL:
        pytest.skip("large Grover circuits only in REPRO_FULL mode")
    circuit = make_workload(workload, num_qubits)
    benchmark.pedantic(
        run_once, args=(config, circuit, melbourne), rounds=2, iterations=1
    )
    stats = transpile_stats(config, circuit, melbourne)
    benchmark.extra_info.update(
        {"workload": workload, "qubits": num_qubits, "config": config, **stats}
    )
