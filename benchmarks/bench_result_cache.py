#!/usr/bin/env python3
"""Result-cache shoot-out: warm cache hits vs full recompilation.

Measures the content-addressed compiled-result cache of
:mod:`repro.transpiler.result_cache` on a production-shaped workload --
the same job batch arriving over and over (exact hits), and the same
ansatz arriving with fresh parameters (template hits that re-bind the
cached compile instead of re-running the pipeline):

* **exact** -- one batch compiled cold (``result_cache=False``), then the
  identical batch served from a warm cache.  ``check_regression.py
  --result-cache`` gates this speedup (>= 5x by default).
* **template** -- the cache learns the parameterized template from two
  samples, then a batch of *never-seen* parameterizations is served by
  re-binding (informational; reported alongside its hit counts).

Usage::

    python benchmarks/bench_result_cache.py --quick --metrics-json REPORT.json
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.algorithms import quantum_phase_estimation, ry_ansatz
from repro.transpiler import CompileService, Target, write_metrics_json


def best_of(repeats: int, func) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def exact_batch(quick: bool) -> list:
    """A mixed batch: repeated structures, distinct parameterizations."""
    rng = np.random.default_rng(7)
    num = 8 if quick else 24
    batch = []
    for index in range(num):
        if index % 4 == 3:
            batch.append(quantum_phase_estimation(3))
        else:
            batch.append(
                ry_ansatz(4, depth=2, parameters=rng.uniform(0, 2 * np.pi, (3, 4)))
            )
    return batch


def template_params(quick: bool) -> list:
    rng = np.random.default_rng(13)
    num = 8 if quick else 32
    return [rng.uniform(0.1, 2 * np.pi - 0.1, (3, 4)) for _ in range(num)]


def bench_exact(batch, target, seeds, repeats: int) -> dict:
    def cold():
        with CompileService(
            mode="serial", pipeline="rpo", result_cache=False
        ) as service:
            service.map([c.copy() for c in batch], targets=target, seeds=seeds)

    cold_s = best_of(repeats, cold)

    with CompileService(mode="serial", pipeline="rpo") as service:
        service.map([c.copy() for c in batch], targets=target, seeds=seeds)

        def warm():
            service.map([c.copy() for c in batch], targets=target, seeds=seeds)

        warm_s = best_of(repeats, warm)
        stats = service.stats()
    return {
        "jobs": len(batch),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "hits": stats["result_cache_hits"],
    }


def bench_template(params, target, repeats: int) -> dict:
    """Fresh parameterizations of one ansatz family, served by re-binding."""

    def cold():
        with CompileService(
            mode="serial", pipeline="rpo", result_cache=False
        ) as service:
            service.map(
                [ry_ansatz(4, depth=2, parameters=p) for p in params],
                targets=target,
                seeds=[0] * len(params),
            )

    cold_s = best_of(repeats, cold)

    with CompileService(mode="serial", pipeline="rpo") as service:
        # two samples teach the template; everything after re-binds
        warmup = template_params(quick=True)[:2]
        service.map(
            [ry_ansatz(4, depth=2, parameters=p) for p in warmup],
            targets=target,
            seeds=[0, 0],
        )
        start = time.perf_counter()
        service.map(
            [ry_ansatz(4, depth=2, parameters=p) for p in params],
            targets=target,
            seeds=[0] * len(params),
        )
        warm_s = time.perf_counter() - start
        stats = service.stats()
    return {
        "jobs": len(params),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "template_hits": stats["result_cache_template_hits"],
        "templates_learned": stats["result_cache"]["template_learned"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small batch (CI)")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--metrics-json", metavar="PATH", help="write a report")
    args = parser.parse_args(argv)

    target = Target.preset("melbourne")
    batch = exact_batch(args.quick)
    seeds = list(range(len(batch)))
    exact = bench_exact(batch, target, seeds, args.repeats)
    template = bench_template(template_params(args.quick), target, args.repeats)

    report = {
        "result_cache": {
            "exact": exact,
            "template": template,
        }
    }

    print(f"{'stage':<10} {'jobs':>6} {'cold':>10} {'warm':>10} {'speedup':>9}")
    for stage, entry in report["result_cache"].items():
        print(
            f"{stage:<10} {entry['jobs']:>6} {entry['cold_s']:>9.4f}s "
            f"{entry['warm_s']:>9.4f}s {entry['speedup']:>8.2f}x"
        )

    if args.metrics_json:
        write_metrics_json(args.metrics_json, report)
        print(f"wrote {args.metrics_json}")


if __name__ == "__main__":
    main()
