"""Table III: Grover with clean-ancilla V-chain oracles, with and without
``ANNOT(0,0)`` annotations, across iteration counts (paper Sec. VIII-C).

Shape under reproduction: without annotations RPO's reductions saturate
after the first iteration (everything is TOP); annotations restore a
per-iteration reduction.
"""

import pytest

from repro.algorithms import grover_circuit
from repro.backends import FakeMelbourne

from .common import FULL, run_once, transpile_stats

NUM_QUBITS = 8 if FULL else 6
ITERATIONS = [2, 4, 6, 8, 10, 12, 14] if FULL else [2, 4, 6]


@pytest.fixture(scope="module")
def melbourne():
    return FakeMelbourne()


@pytest.mark.parametrize("iterations", ITERATIONS)
@pytest.mark.parametrize("mode", ["level3", "rpo", "rpo_annot"])
def test_table3(benchmark, melbourne, iterations, mode):
    annotate = mode == "rpo_annot"
    config = "level3" if mode == "level3" else "rpo"
    circuit = grover_circuit(
        NUM_QUBITS, iterations=iterations, design="vchain", annotate=annotate
    )
    benchmark.pedantic(
        run_once, args=(config, circuit, melbourne), rounds=2, iterations=1
    )
    stats = transpile_stats(config, circuit, melbourne)
    benchmark.extra_info.update(
        {"iterations": iterations, "mode": mode, **stats}
    )


def test_annotations_never_hurt(melbourne):
    """Regression of the Table III ordering: rpo+annot <= rpo <= level3."""
    for iterations in ITERATIONS[:2]:
        plain = grover_circuit(NUM_QUBITS, iterations=iterations, design="vchain")
        annotated = grover_circuit(
            NUM_QUBITS, iterations=iterations, design="vchain", annotate=True
        )
        level3 = transpile_stats("level3", plain, melbourne)["cx"]
        rpo = transpile_stats("rpo", plain, melbourne)["cx"]
        rpo_annot = transpile_stats("rpo", annotated, melbourne)["cx"]
        assert rpo_annot <= rpo <= level3
