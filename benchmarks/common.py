"""Shared benchmark harness.

Provides the paper's measurement protocol (Sec. VII-B): transpile each
circuit under several pipeline configurations over multiple routing seeds
and report medians of CNOT count, single-qubit gate count, depth and
transpile time.

Set ``REPRO_FULL=1`` in the environment to run paper-scale sizes and seed
counts (the default is a fast configuration suitable for CI).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.backends import FakeAlmaden, FakeMelbourne, FakeRochester
from repro.rpo import hoare_pass_manager, rpo_extended_pass_manager, rpo_pass_manager
from repro.transpiler import level_3_pass_manager
from repro.transpiler.passmanager import PropertySet

FULL = os.environ.get("REPRO_FULL", "0") == "1"

#: median over this many seeded transpilations (paper: 25)
NUM_SEEDS = 25 if FULL else 3

CONFIGS = {
    "level3": level_3_pass_manager,
    "hoare": hoare_pass_manager,
    "rpo": rpo_pass_manager,
    "rpo_ext": rpo_extended_pass_manager,
}

BACKENDS = {
    "melbourne": FakeMelbourne,
    "almaden": FakeAlmaden,
    "rochester": FakeRochester,
}

ONE_QUBIT_GATES = ("u1", "u2", "u3", "id", "x", "h", "z", "s", "sdg", "t", "tdg")


def transpile_stats(config: str, circuit, backend, num_seeds: int = None) -> dict:
    """Median CNOT count / 1q count / depth / time over seeds."""
    factory = CONFIGS[config]
    num_seeds = num_seeds or NUM_SEEDS
    cx, one_q, depth, times = [], [], [], []
    for seed in range(num_seeds):
        pm = factory(
            backend.coupling_map, backend_properties=backend.properties, seed=seed
        )
        start = time.perf_counter()
        out = pm.run(circuit.copy(), PropertySet())
        times.append(time.perf_counter() - start)
        ops = out.count_ops()
        cx.append(ops.get("cx", 0))
        one_q.append(sum(ops.get(name, 0) for name in ONE_QUBIT_GATES))
        depth.append(out.depth())
    return {
        "cx": int(np.median(cx)),
        "1q": int(np.median(one_q)),
        "depth": int(np.median(depth)),
        "time": float(np.median(times)),
    }


def run_once(config: str, circuit, backend, seed: int = 0):
    """Single transpilation (the unit timed by pytest-benchmark)."""
    pm = CONFIGS[config](
        backend.coupling_map, backend_properties=backend.properties, seed=seed
    )
    return pm.run(circuit.copy(), PropertySet())


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
