"""Shared benchmark harness.

Provides the paper's measurement protocol (Sec. VII-B): transpile each
circuit under several pipeline configurations over multiple routing seeds
and report medians of CNOT count, single-qubit gate count, depth and
transpile time.

All transpilation goes through the public front-end
(:func:`repro.transpiler.transpile`): one entry point routes the preset
levels, the RPO pipelines and the Hoare baseline.  The per-seed runs of
:func:`transpile_stats` stay independent and cold (fresh
:class:`~repro.transpiler.AnalysisCache` each) to preserve the paper's
timing protocol; warm-cache serving throughput is exercised by
``tests/transpiler/test_cache.py`` instead.

Set ``REPRO_FULL=1`` in the environment to run paper-scale sizes and seed
counts (the default is a fast configuration suitable for CI).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.backends import FakeAlmaden, FakeMelbourne, FakeRochester
from repro.transpiler import AnalysisCache, aggregate_batch, transpile

FULL = os.environ.get("REPRO_FULL", "0") == "1"

#: median over this many seeded transpilations (paper: 25)
NUM_SEEDS = 25 if FULL else 3

#: benchmark configuration name -> front-end pipeline name
CONFIGS = {
    "level3": "level3",
    "hoare": "hoare",
    "rpo": "rpo",
    "rpo_ext": "rpo_ext",
}

BACKENDS = {
    "melbourne": FakeMelbourne,
    "almaden": FakeAlmaden,
    "rochester": FakeRochester,
}

ONE_QUBIT_GATES = ("u1", "u2", "u3", "id", "x", "h", "z", "s", "sdg", "t", "tdg")


def transpile_stats(config: str, circuit, backend, num_seeds: int = None) -> dict:
    """Median CNOT count / 1q count / depth / time over seeds.

    Each seeded run is an independent, cold ``transpile()`` call with its
    own fresh :class:`~repro.transpiler.AnalysisCache` -- the paper's
    protocol times cold transpilations, so sharing a warm cache across the
    seeds would skew the level3/hoare/rpo time comparison.  Per-run wall
    time comes from each run's :class:`TranspileResult`.
    """
    num_seeds = num_seeds or NUM_SEEDS
    results = [
        transpile(
            circuit.copy(),
            backend=backend,
            pipeline=CONFIGS[config],
            seed=seed,
            full_result=True,
        )
        for seed in range(num_seeds)
    ]
    cx, one_q, depth, times = [], [], [], []
    for result in results:
        ops = result.circuit.count_ops()
        cx.append(ops.get("cx", 0))
        one_q.append(sum(ops.get(name, 0) for name in ONE_QUBIT_GATES))
        depth.append(result.circuit.depth())
        times.append(result.time)
    return {
        "cx": int(np.median(cx)),
        "1q": int(np.median(one_q)),
        "depth": int(np.median(depth)),
        "time": float(np.median(times)),
    }


def batch_metrics_report(
    config: str,
    circuits,
    backend,
    executor: str = "auto",
    num_seeds: int = 1,
    max_workers: int | None = None,
    service=None,
) -> dict:
    """One *batched* transpile over a shared cache, rolled up into a
    JSON-ready metrics report (:func:`repro.transpiler.aggregate_batch`).

    This is the serving-shaped measurement the per-seed cold runs of
    :func:`transpile_stats` deliberately avoid: the whole batch shares one
    :class:`~repro.transpiler.AnalysisCache` (across processes too, under
    ``executor="process"``/``"service"``), and the report records batch
    wall-clock, per-pass and per-target aggregates and cache hit rates.
    Pass a persistent :class:`~repro.transpiler.CompileService` as
    ``service`` to measure the amortized-pool serving path instead of a
    per-call executor.
    """
    batch, seeds = [], []
    for circuit in circuits:
        for seed in range(num_seeds):
            batch.append(circuit.copy())
            seeds.append(seed)
    cache = service.cache if service is not None else AnalysisCache()
    start = time.perf_counter()
    results = transpile(
        batch,
        backend=backend,
        pipeline=CONFIGS[config],
        seed=seeds,
        executor=executor,
        max_workers=max_workers,
        analysis_cache=cache,
        full_result=True,
        service=service,
    )
    wall_time = time.perf_counter() - start
    label = executor if service is None else "service"
    return aggregate_batch(
        results, cache=cache, executor=label, wall_time=wall_time
    )


def mean_time_by_config(rows) -> dict:
    """Per-config mean of the ``time`` cells of benchmark row dicts.

    The regression gate (:func:`repro.transpiler.compare_metrics`) compares
    these *normalized by the run's own level3 mean*, so machine speed
    cancels out of CI comparisons.
    """
    totals: dict[str, list[float]] = {}
    for row in rows:
        totals.setdefault(row["config"], []).append(row["time"])
    return {
        config: float(np.mean(times)) for config, times in sorted(totals.items())
    }


def run_once(config: str, circuit, backend, seed: int = 0):
    """Single transpilation (the unit timed by pytest-benchmark)."""
    return transpile(
        circuit.copy(),
        backend=backend,
        pipeline=CONFIGS[config],
        seed=seed,
    )


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
