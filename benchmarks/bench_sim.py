#!/usr/bin/env python3
"""Backend-resident simulation + vectorized analysis-core benchmark.

Measures the two lanes of the backend-resident work against the paths
they replaced, on the quick QV/Grover workload set:

* **statevector** -- wide-circuit simulation throughput: the fused
  backend-resident evolve loop (matrices staged once per program, state
  on the active array backend, one ``asnumpy()`` at the boundary) vs the
  naive per-gate host loop (one ``operation.to_matrix()`` + host matmul
  per instruction).  This is the speedup ``check_regression.py --sim``
  gates (default floor 2x).
* **trackers** -- stacked-array basis/pure trackers driving a brickwork
  trace through the bulk ``apply_1q_gates`` kernels vs the per-gate
  scalar automata, with parity flags (basis: bit-identical; pure: within
  ``1e-12``).
* **hoare** -- the vectorized support transformers vs the per-pattern
  set loops over the full workload circuits, with an output-identity
  parity flag.
* **passes** -- QBO/QPO run under scalar and vectorized trackers must
  emit byte-for-byte identical circuits (``REPRO_SCALAR_TRACKERS`` is
  flipped between runs).

Usage::

    python benchmarks/bench_sim.py --quick --metrics-json REPORT.json

On a CuPy machine, ``REPRO_ARRAY_BACKEND=cupy`` reruns the statevector
lane device-resident (see README "Numeric kernels & array backends").
"""

from __future__ import annotations

import argparse
import math
import os
import time

import numpy as np

from repro.algorithms import grover_circuit, quantum_volume_circuit
from repro.linalg.backend import backend_name
from repro.rpo.basis_tracker import BasisStateTracker
from repro.rpo.hoare import HoareOptimizer
from repro.rpo.pure_tracker import PureStateTracker
from repro.rpo.qbo import QBOPass
from repro.rpo.qpo import QPOPass
from repro.rpo.vectorization import SCALAR_ENV_VAR
from repro.simulators import StatevectorSimulator
from repro.simulators.statevector import apply_gate_to_state
from repro.transpiler import write_metrics_json
from repro.transpiler.passmanager import PropertySet


def workloads(quick: bool):
    sizes = [8, 10, 12] if quick else [8, 10, 12, 14]
    for n in sizes:
        yield f"qv-{n}", quantum_volume_circuit(n, seed=5)
        yield f"grover-{n}", grover_circuit(n, design="noancilla")


def strip_measurements(circuit):
    stripped = circuit.copy_empty_like()
    for instruction in circuit.data:
        if instruction.operation.name in ("measure", "reset"):
            continue
        stripped.append(instruction.operation, instruction.qubits, instruction.clbits)
    return stripped


def best_of(repeats: int, func) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def describe(circuit):
    """Hashable full description of a circuit (for output-identity checks)."""
    return (
        circuit.global_phase,
        tuple(
            (
                instruction.operation.name,
                tuple(
                    float(p)
                    for p in instruction.operation.params
                    if isinstance(p, (int, float))
                ),
                instruction.qubits,
                instruction.clbits,
            )
            for instruction in circuit.data
        ),
    )


# -- statevector throughput --------------------------------------------------


def naive_statevector(circuit) -> np.ndarray:
    """The seed path: one ``to_matrix()`` + host apply per instruction."""
    num_qubits = circuit.num_qubits
    state = np.zeros(2**num_qubits, dtype=complex)
    state[0] = 1.0
    state *= np.exp(1j * circuit.global_phase)
    for instruction in circuit.data:
        operation = instruction.operation
        if operation.is_directive:
            continue
        state = apply_gate_to_state(
            state, operation.to_matrix(), instruction.qubits, num_qubits
        )
    return state


def bench_statevector(circuits, repeats: int) -> dict:
    resident = StatevectorSimulator(fusion=True)

    def naive():
        for circuit in circuits:
            naive_statevector(circuit)

    def fused():
        for circuit in circuits:
            resident.statevector(circuit)

    fused()  # warm the fused-program/matrix caches: steady-state serving
    naive_time = best_of(repeats, naive)
    resident_time = best_of(repeats, fused)
    max_error = max(
        float(np.max(np.abs(naive_statevector(c) - resident.statevector(c))))
        for c in circuits
    )
    return {
        "circuits": len(circuits),
        "gates": sum(len(circuit.data) for circuit in circuits),
        "naive_s": naive_time,
        "resident_s": resident_time,
        "speedup": naive_time / resident_time if resident_time > 0 else float("inf"),
        "max_error": max_error,
    }


# -- tracker throughput ------------------------------------------------------

#: 1q Cliffords keep the basis automaton inside its six states, so the
#: basis lane measures sustained transitions instead of a TOP fixpoint.
_CLIFFORD_1Q = {
    "h": np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def brickwork_trace(num_qubits: int, rounds: int, matrices, seed: int):
    """``rounds`` layers of one gate per qubit, drawn from ``matrices``."""
    rng = np.random.default_rng(seed)
    pool = np.stack(matrices)
    qubits = np.arange(num_qubits)
    return [pool[rng.integers(0, len(pool), size=num_qubits)] for _ in range(rounds)], qubits


def bench_tracker(make_tracker, layers, qubits, repeats: int, compare) -> dict:
    def run(vectorized: bool):
        tracker = make_tracker(vectorized)
        for stack in layers:
            tracker.apply_1q_gates(qubits, stack)
        return tracker

    scalar_time = best_of(repeats, lambda: run(False))
    vectorized_time = best_of(repeats, lambda: run(True))
    parity, max_error = compare(run(False), run(True))
    return {
        "gates": len(layers) * len(qubits),
        "scalar_s": scalar_time,
        "vectorized_s": vectorized_time,
        "speedup": scalar_time / vectorized_time if vectorized_time > 0 else float("inf"),
        "parity": parity,
        "max_error": max_error,
    }


def bench_trackers(quick: bool, repeats: int) -> dict:
    num_qubits = 24 if quick else 64
    rounds = 150 if quick else 400
    clifford_layers, qubits = brickwork_trace(
        num_qubits, rounds, list(_CLIFFORD_1Q.values()), seed=3
    )

    def compare_basis(scalar, vectorized):
        identical = bool(
            np.array_equal(scalar.axes, vectorized.axes)
            and np.array_equal(scalar.signs, vectorized.signs)
        )
        return identical, 0.0

    basis = bench_tracker(
        lambda v: BasisStateTracker(num_qubits, vectorized=v),
        clifford_layers, qubits, repeats, compare_basis,
    )

    rng = np.random.default_rng(7)
    from repro.linalg.euler import u3_matrix

    u3_pool = [
        u3_matrix(*angles) for angles in rng.uniform(0.0, 2 * math.pi, size=(16, 3))
    ]
    u3_layers, qubits = brickwork_trace(num_qubits, rounds, u3_pool, seed=9)

    def compare_pure(scalar, vectorized):
        error = float(np.max(np.abs(scalar.tuples - vectorized.tuples)))
        same_known = bool(np.array_equal(scalar.known, vectorized.known))
        return same_known and error <= 1e-12, error

    pure = bench_tracker(
        lambda v: PureStateTracker(num_qubits, vectorized=v),
        u3_layers, qubits, repeats, compare_pure,
    )
    return {"basis": basis, "pure": pure}


# -- Hoare + pass parity -----------------------------------------------------


def bench_hoare(named, repeats: int) -> dict:
    # a generous support cap puts real weight on the pattern transformers
    # (the default 64-pattern cap collapses to TOP before the stacked
    # kernels can matter); both arms run under the same cap
    max_support = 1 << 14

    def run(circuits, vectorized: bool):
        outputs = []
        for circuit in circuits:
            optimizer = HoareOptimizer(max_support=max_support, vectorized=vectorized)
            outputs.append(optimizer.transform(circuit, PropertySet()))
        return outputs

    # time the permutation-transformer-heavy Grover circuits; QV is
    # widening-dominated, which runs the same set loops in both arms
    timed = [circuit for name, circuit in named if name.startswith("grover")]
    scalar_time = best_of(repeats, lambda: run(timed, False))
    vectorized_time = best_of(repeats, lambda: run(timed, True))
    everything = [circuit for _, circuit in named]
    parity = all(
        describe(s) == describe(v)
        for s, v in zip(run(everything, False), run(everything, True))
    )
    return {
        "circuits": len(timed),
        "parity_circuits": len(everything),
        "scalar_s": scalar_time,
        "vectorized_s": vectorized_time,
        "speedup": scalar_time / vectorized_time if vectorized_time > 0 else float("inf"),
        "parity": bool(parity),
    }


def check_pass_parity(circuits) -> dict:
    """QBO/QPO outputs must not depend on the tracker implementation."""

    def run_all():
        outputs = []
        for circuit in circuits:
            qbo = QBOPass().transform(circuit, PropertySet())
            qpo = QPOPass().transform(circuit, PropertySet())
            outputs.append((describe(qbo), describe(qpo)))
        return outputs

    saved = os.environ.get(SCALAR_ENV_VAR)
    try:
        os.environ[SCALAR_ENV_VAR] = "1"
        scalar = run_all()
        os.environ.pop(SCALAR_ENV_VAR, None)
        vectorized = run_all()
    finally:
        if saved is None:
            os.environ.pop(SCALAR_ENV_VAR, None)
        else:
            os.environ[SCALAR_ENV_VAR] = saved
    qbo_identical = all(s[0] == v[0] for s, v in zip(scalar, vectorized))
    qpo_identical = all(s[1] == v[1] for s, v in zip(scalar, vectorized))
    return {
        "qbo_identical": bool(qbo_identical),
        "qpo_identical": bool(qpo_identical),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sizes (CI)")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--metrics-json", metavar="PATH", help="write a report")
    args = parser.parse_args(argv)

    named = list(workloads(args.quick))
    circuits = [circuit for _, circuit in named]
    sim_circuits = [strip_measurements(circuit) for circuit in circuits]

    statevector = bench_statevector(sim_circuits, args.repeats)
    trackers = bench_trackers(args.quick, args.repeats)
    hoare = bench_hoare(named, args.repeats)
    passes = check_pass_parity(circuits)

    report = {
        "workloads": [name for name, _ in named],
        "backend": backend_name(),
        "sim": {
            "statevector": statevector,
            "trackers": trackers,
            "hoare": hoare,
            "passes": passes,
        },
    }

    print(f"array backend: {report['backend']}")
    print(f"{'stage':<16} {'work':>10} {'baseline':>10} {'new':>10} {'speedup':>8}  parity")
    rows = [
        ("statevector", statevector, "naive_s", "resident_s",
         f"err<={statevector['max_error']:.1e}"),
        ("tracker:basis", trackers["basis"], "scalar_s", "vectorized_s",
         str(trackers["basis"]["parity"])),
        ("tracker:pure", trackers["pure"], "scalar_s", "vectorized_s",
         f"{trackers['pure']['parity']} (err<={trackers['pure']['max_error']:.1e})"),
        ("hoare", hoare, "scalar_s", "vectorized_s", str(hoare["parity"])),
    ]
    for stage, entry, base_key, new_key, parity in rows:
        work = entry.get("gates", entry.get("circuits"))
        print(
            f"{stage:<16} {work:>10} {entry[base_key]:>9.4f}s "
            f"{entry[new_key]:>9.4f}s {entry['speedup']:>7.2f}x  {parity}"
        )
    print(
        f"pass outputs tracker-independent: qbo={passes['qbo_identical']} "
        f"qpo={passes['qpo_identical']}"
    )

    if args.metrics_json:
        write_metrics_json(args.metrics_json, report)
        print(f"wrote {args.metrics_json}")


if __name__ == "__main__":
    main()
