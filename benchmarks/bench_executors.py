#!/usr/bin/env python3
"""Executor shoot-out on a batch of Table II circuits.

Transpiles one batch (32+ circuits by default) under each executor backend
and reports wall-clock, per-circuit throughput and cache statistics.  The
thread pool is GIL-bound on the pure-Python RPO passes, so on a multi-core
host the process pool should win -- this script is the acceptance check for
that claim, and ``--assert-speedup`` turns it into a hard CI gate.

All executors must produce gate-identical circuits; the script always
verifies that, whatever else it measures.

Usage::

    python benchmarks/bench_executors.py [--quick] [--assert-speedup]
                                         [--metrics-json PATH]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro.algorithms import (
    grover_circuit,
    quantum_phase_estimation,
    quantum_volume_circuit,
    ry_ansatz,
)
from repro.backends import FakeMelbourne
from repro.transpiler import AnalysisCache, aggregate_batch, transpile

from common import print_table


def build_batch(quick: bool):
    """At least 32 Table II circuits (8 in ``--quick`` mode), with seeds."""
    sizes = [4, 5] if quick else [4, 5, 6, 7]
    repeats = 1 if quick else 2
    circuits = []
    for num_qubits in sizes:
        for _ in range(repeats):
            circuits.append(quantum_phase_estimation(num_qubits - 1))
            circuits.append(ry_ansatz(num_qubits, depth=3, seed=11))
            circuits.append(quantum_volume_circuit(num_qubits, seed=5))
            circuits.append(grover_circuit(num_qubits, design="noancilla"))
    seeds = list(range(len(circuits)))
    return circuits, seeds


def assert_identical(reference, candidates, label):
    for index, (expected, got) in enumerate(zip(reference, candidates)):
        same = (
            len(expected.data) == len(got.data)
            and abs(expected.global_phase - got.global_phase) < 1e-9
            and all(
                a.operation.name == b.operation.name
                and a.qubits == b.qubits
                and a.clbits == b.clbits
                for a, b in zip(expected.data, got.data)
            )
        )
        if not same:
            raise SystemExit(
                f"executor parity violated: circuit {index} differs under "
                f"{label!r}"
            )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="8-circuit batch")
    parser.add_argument(
        "--pipeline", default="rpo", help="pipeline to benchmark (default: rpo)"
    )
    parser.add_argument(
        "--assert-speedup",
        action="store_true",
        help="fail unless process beats thread wall-clock (multi-core hosts)",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="write per-executor metrics reports to PATH as JSON",
    )
    args = parser.parse_args(argv)

    backend = FakeMelbourne()
    circuits, seeds = build_batch(args.quick)
    print(
        f"batch: {len(circuits)} circuits, pipeline={args.pipeline!r}, "
        f"host cores: {os.cpu_count()}"
    )

    def measure(executor: str):
        cache = AnalysisCache()
        start = time.perf_counter()
        results = transpile(
            [circuit.copy() for circuit in circuits],
            backend=backend,
            pipeline=args.pipeline,
            seed=seeds,
            executor=executor,
            analysis_cache=cache,
            full_result=True,
        )
        wall = time.perf_counter() - start
        return wall, results, cache

    wall_times: dict[str, float] = {}
    outputs: dict[str, list] = {}
    reports: dict[str, dict] = {}
    rows = []
    for executor in ("serial", "thread", "process"):
        wall, results, cache = measure(executor)
        wall_times[executor] = wall
        outputs[executor] = [result.circuit for result in results]
        reports[executor] = aggregate_batch(
            results, cache=cache, executor=executor, wall_time=wall
        )
        rows.append(
            [
                executor,
                f"{wall:.2f}s",
                f"{len(circuits) / wall:.1f}/s",
                f"{sum(r.time for r in results):.2f}s",
                len(cache._matrices),
            ]
        )

    print_table(
        "Executor comparison",
        ["executor", "wall", "throughput", "cpu-time", "cache entries"],
        rows,
    )

    for executor in ("thread", "process"):
        assert_identical(outputs["serial"], outputs[executor], executor)
    print("parity: all executors produced gate-identical circuits")

    if args.metrics_json:
        from repro.transpiler import write_metrics_json

        write_metrics_json(
            args.metrics_json,
            {
                "suite": "executors",
                "num_circuits": len(circuits),
                "pipeline": args.pipeline,
                "cpu_count": os.cpu_count(),
                "wall_times": wall_times,
                "reports": reports,
            },
        )
        print(f"metrics written to {args.metrics_json}")

    if args.assert_speedup:
        if (os.cpu_count() or 1) < 2:
            print("single-core host: skipping the speedup assertion")
            return
        # timings on shared CI runners are noisy: before failing the gate,
        # re-measure both contenders once (best-of-two per executor)
        if wall_times["process"] >= wall_times["thread"]:
            print("process did not beat thread on the first run; re-measuring")
            for executor in ("thread", "process"):
                wall, _, _ = measure(executor)
                wall_times[executor] = min(wall_times[executor], wall)
        if wall_times["process"] >= wall_times["thread"]:
            raise SystemExit(
                f"process executor ({wall_times['process']:.2f}s) did not beat "
                f"thread executor ({wall_times['thread']:.2f}s)"
            )
        speedup = wall_times["thread"] / wall_times["process"]
        print(f"process beats thread: {speedup:.2f}x")


if __name__ == "__main__":
    main()
