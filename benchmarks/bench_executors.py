#!/usr/bin/env python3
"""Executor and service shoot-out on a batch of Table II circuits.

Three measurements, each an acceptance check for one layer of the
execution stack:

1. **Executor comparison** -- transpiles one batch (32+ circuits by
   default) under each executor backend and reports wall-clock,
   throughput and cache statistics.  The thread pool is GIL-bound on the
   pure-Python RPO passes, so on a multi-core host the process pool
   should win; ``--assert-speedup`` turns that into a hard CI gate.
2. **Service vs per-call pool** -- replays the batch for several rounds
   through (a) a fresh ``transpile(executor="process")`` pool per round
   and (b) one persistent :class:`~repro.transpiler.CompileService`.  The
   service pays pool start-up and worker warm-start once, so it must win
   on total wall-clock; ``--assert-service-speedup`` gates CI on it.
3. **Snapshot warm-start** -- persists the service cache to disk, then
   compares a cold run against a cold-process-warm-started-from-disk run:
   the warm-started one must show the higher cache hit-rate.

All executors must produce gate-identical circuits; the script always
verifies that, whatever else it measures.  A heterogeneous two-target
batch (melbourne + almaden) exercises per-target routing and lands in the
metrics JSON under ``by_target``.

Usage::

    python benchmarks/bench_executors.py [--quick] [--assert-speedup]
                                         [--assert-service-speedup]
                                         [--rounds N]
                                         [--snapshot-path PATH]
                                         [--metrics-json PATH]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro.algorithms import (
    grover_circuit,
    quantum_phase_estimation,
    quantum_volume_circuit,
    ry_ansatz,
)
from repro.backends import FakeAlmaden, FakeMelbourne
from repro.transpiler import (
    AnalysisCache,
    CompileService,
    Target,
    aggregate_batch,
    transpile,
)

from common import print_table


def build_batch(quick: bool):
    """At least 32 Table II circuits (8 in ``--quick`` mode), with seeds."""
    sizes = [4, 5] if quick else [4, 5, 6, 7]
    repeats = 1 if quick else 2
    circuits = []
    for num_qubits in sizes:
        for _ in range(repeats):
            circuits.append(quantum_phase_estimation(num_qubits - 1))
            circuits.append(ry_ansatz(num_qubits, depth=3, seed=11))
            circuits.append(quantum_volume_circuit(num_qubits, seed=5))
            circuits.append(grover_circuit(num_qubits, design="noancilla"))
    seeds = list(range(len(circuits)))
    return circuits, seeds


def assert_identical(reference, candidates, label):
    for index, (expected, got) in enumerate(zip(reference, candidates)):
        same = (
            len(expected.data) == len(got.data)
            and abs(expected.global_phase - got.global_phase) < 1e-9
            and all(
                a.operation.name == b.operation.name
                and a.qubits == b.qubits
                and a.clbits == b.clbits
                for a, b in zip(expected.data, got.data)
            )
        )
        if not same:
            raise SystemExit(
                f"executor parity violated: circuit {index} differs under "
                f"{label!r}"
            )


def measure_service_vs_per_call(
    circuits, seeds, target: Target, pipeline: str, rounds: int
):
    """Total wall-clock of ``rounds`` batches: per-call pools vs one service.

    Both contenders keep one warm :class:`AnalysisCache` across rounds, so
    the only difference is the pool lifetime -- per-call pays
    ``ProcessPoolExecutor`` start-up and worker warm-start every round,
    the service pays it once.
    """

    def per_call() -> float:
        cache = AnalysisCache()
        start = time.perf_counter()
        for round_index in range(rounds):
            transpile(
                [circuit.copy() for circuit in circuits],
                target=target,
                pipeline=pipeline,
                seed=seeds,
                executor="process",
                analysis_cache=cache,
            )
        return time.perf_counter() - start

    def service() -> float:
        start = time.perf_counter()
        with CompileService(pipeline=pipeline, target=target) as svc:
            for round_index in range(rounds):
                svc.map([circuit.copy() for circuit in circuits], seeds=seeds)
        return time.perf_counter() - start

    return {"process_per_call": per_call(), "service": service()}


def measure_snapshot_warm_start(circuits, seeds, target, pipeline, snapshot_path):
    """Cold run vs cold-run-warm-started-from-disk; returns both hit rates."""

    def hit_rate(cache: AnalysisCache) -> float:
        requests = cache.matrix_requests
        return 1.0 - cache.matrix_constructions / requests if requests else 0.0

    # the cold service gets no snapshot_path: a file left over from an
    # earlier run must not warm the cold baseline (it would erase the
    # very hit-rate gap this measurement demonstrates)
    cold_cache = AnalysisCache()
    with CompileService(
        pipeline=pipeline, target=target, analysis_cache=cold_cache
    ) as service:
        service.map([circuit.copy() for circuit in circuits], seeds=seeds)
        service.save_snapshot(snapshot_path)

    warm_cache = AnalysisCache()
    reborn = CompileService(
        pipeline=pipeline,
        target=target,
        analysis_cache=warm_cache,
        snapshot_path=snapshot_path,
    )
    entries_loaded = reborn.stats()["snapshot_entries_loaded"]
    reborn.map([circuit.copy() for circuit in circuits], seeds=seeds)
    reborn.shutdown(save=False)
    return {
        "cold_hit_rate": hit_rate(cold_cache),
        "warm_hit_rate": hit_rate(warm_cache),
        "snapshot_entries_loaded": entries_loaded,
    }


def measure_heterogeneous(circuits, seeds, pipeline):
    """One batch against two different targets; per-target metrics report."""
    targets = [
        Target.from_backend(FakeMelbourne())
        if index % 2 == 0
        else Target.from_backend(FakeAlmaden())
        for index in range(len(circuits))
    ]
    cache = AnalysisCache()
    start = time.perf_counter()
    results = transpile(
        [circuit.copy() for circuit in circuits],
        target=targets,
        pipeline=pipeline,
        seed=seeds,
        executor="process",
        analysis_cache=cache,
        full_result=True,
    )
    wall = time.perf_counter() - start
    return aggregate_batch(results, cache=cache, executor="process", wall_time=wall)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="8-circuit batch")
    parser.add_argument(
        "--pipeline", default="rpo", help="pipeline to benchmark (default: rpo)"
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=4,
        help="batch replays in the service-vs-per-call comparison (default 4); "
        "more rounds amortize the persistent pool over more per-call "
        "spin-ups, widening the measured gap",
    )
    parser.add_argument(
        "--assert-speedup",
        action="store_true",
        help="fail unless process beats thread wall-clock (multi-core hosts)",
    )
    parser.add_argument(
        "--assert-service-speedup",
        action="store_true",
        help="fail unless the persistent service beats per-call process "
        "pools over --rounds batches, and unless the disk-snapshot "
        "warm-start raises the cache hit-rate",
    )
    parser.add_argument(
        "--snapshot-path",
        metavar="PATH",
        help="persist the service cache snapshot here (default: a temp file "
        "deleted afterwards); CI uploads it as an artifact",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="write per-executor metrics reports to PATH as JSON",
    )
    args = parser.parse_args(argv)

    backend = FakeMelbourne()
    target = Target.from_backend(backend)
    circuits, seeds = build_batch(args.quick)
    print(
        f"batch: {len(circuits)} circuits, pipeline={args.pipeline!r}, "
        f"host cores: {os.cpu_count()}"
    )

    def measure(executor: str):
        cache = AnalysisCache()
        start = time.perf_counter()
        results = transpile(
            [circuit.copy() for circuit in circuits],
            target=target,
            pipeline=args.pipeline,
            seed=seeds,
            executor=executor,
            analysis_cache=cache,
            full_result=True,
        )
        wall = time.perf_counter() - start
        return wall, results, cache

    wall_times: dict[str, float] = {}
    outputs: dict[str, list] = {}
    reports: dict[str, dict] = {}
    rows = []
    for executor in ("serial", "thread", "process"):
        wall, results, cache = measure(executor)
        wall_times[executor] = wall
        outputs[executor] = [result.circuit for result in results]
        reports[executor] = aggregate_batch(
            results, cache=cache, executor=executor, wall_time=wall
        )
        rows.append(
            [
                executor,
                f"{wall:.2f}s",
                f"{len(circuits) / wall:.1f}/s",
                f"{sum(r.time for r in results):.2f}s",
                len(cache._matrices),
            ]
        )

    print_table(
        "Executor comparison",
        ["executor", "wall", "throughput", "cpu-time", "cache entries"],
        rows,
    )

    for executor in ("thread", "process"):
        assert_identical(outputs["serial"], outputs[executor], executor)
    print("parity: all executors produced gate-identical circuits")

    # -- persistent service vs per-call pools -------------------------------
    service_walls = measure_service_vs_per_call(
        circuits, seeds, target, args.pipeline, args.rounds
    )
    if args.assert_service_speedup and (
        service_walls["service"] >= service_walls["process_per_call"]
    ):
        # shared CI runners are noisy: best-of-two before failing the gate
        print("service did not beat per-call pools on the first run; re-measuring")
        rerun = measure_service_vs_per_call(
            circuits, seeds, target, args.pipeline, args.rounds
        )
        service_walls = {
            key: min(service_walls[key], rerun[key]) for key in service_walls
        }
    wall_times.update(service_walls)
    print_table(
        f"Service vs per-call process pools ({args.rounds} rounds)",
        ["strategy", "total wall", "throughput"],
        [
            [
                name,
                f"{wall:.2f}s",
                f"{args.rounds * len(circuits) / wall:.1f}/s",
            ]
            for name, wall in service_walls.items()
        ],
    )

    # -- disk snapshot warm-start ------------------------------------------
    snapshot_path = args.snapshot_path
    temp_snapshot = None
    if snapshot_path is None:
        fd, temp_snapshot = tempfile.mkstemp(suffix=".snap")
        os.close(fd)
        snapshot_path = temp_snapshot
    try:
        warm_start = measure_snapshot_warm_start(
            circuits, seeds, target, args.pipeline, snapshot_path
        )
    finally:
        if temp_snapshot is not None:
            os.unlink(temp_snapshot)
        else:
            print(f"cache snapshot persisted to {snapshot_path}")
    print(
        f"snapshot warm-start: cold hit-rate "
        f"{warm_start['cold_hit_rate']:.1%} -> warm "
        f"{warm_start['warm_hit_rate']:.1%} "
        f"({warm_start['snapshot_entries_loaded']} entries restored from disk)"
    )

    # -- heterogeneous two-target batch ------------------------------------
    hetero = measure_heterogeneous(circuits, seeds, args.pipeline)
    print_table(
        "Heterogeneous batch (two targets, one call)",
        ["target", "circuits", "median cx", "median time"],
        [
            [
                label,
                entry["num_circuits"],
                int(entry["cx"]["median"]),
                f"{entry['time']['median'] * 1000:.1f}ms",
            ]
            for label, entry in sorted(hetero["by_target"].items())
        ],
    )

    if args.metrics_json:
        from repro.transpiler import write_metrics_json

        write_metrics_json(
            args.metrics_json,
            {
                "suite": "executors",
                "num_circuits": len(circuits),
                "pipeline": args.pipeline,
                "cpu_count": os.cpu_count(),
                "rounds": args.rounds,
                "wall_times": wall_times,
                "snapshot_warm_start": warm_start,
                "heterogeneous": hetero,
                "reports": reports,
            },
        )
        print(f"metrics written to {args.metrics_json}")

    if args.assert_service_speedup:
        if warm_start["warm_hit_rate"] <= warm_start["cold_hit_rate"]:
            raise SystemExit(
                f"disk-snapshot warm-start did not raise the cache hit-rate "
                f"(cold {warm_start['cold_hit_rate']:.1%}, warm "
                f"{warm_start['warm_hit_rate']:.1%})"
            )
        if wall_times["service"] >= wall_times["process_per_call"]:
            raise SystemExit(
                f"persistent service ({wall_times['service']:.2f}s) did not "
                f"beat per-call process pools "
                f"({wall_times['process_per_call']:.2f}s) over "
                f"{args.rounds} rounds"
            )
        speedup = wall_times["process_per_call"] / wall_times["service"]
        print(f"service beats per-call pools: {speedup:.2f}x")

    if args.assert_speedup:
        if (os.cpu_count() or 1) < 2:
            print("single-core host: skipping the speedup assertion")
            return
        # timings on shared CI runners are noisy: before failing the gate,
        # re-measure both contenders once (best-of-two per executor)
        if wall_times["process"] >= wall_times["thread"]:
            print("process did not beat thread on the first run; re-measuring")
            for executor in ("thread", "process"):
                wall, _, _ = measure(executor)
                wall_times[executor] = min(wall_times[executor], wall)
        if wall_times["process"] >= wall_times["thread"]:
            raise SystemExit(
                f"process executor ({wall_times['process']:.2f}s) did not beat "
                f"thread executor ({wall_times['thread']:.2f}s)"
            )
        speedup = wall_times["thread"] / wall_times["process"]
        print(f"process beats thread: {speedup:.2f}x")


if __name__ == "__main__":
    main()
