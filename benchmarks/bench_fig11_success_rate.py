"""Figure 11 / Sec. VIII-E: 3-qubit QPE success rate on noisy devices.

The paper runs on the real machines; this repo substitutes Monte-Carlo
Pauli + readout noise built from each fake backend's calibration data
(DESIGN.md).  Expected shape: RPO's CNOT reduction translates into a higher
probability of the correct outcome ``111`` on every device.
"""

import pytest

from repro.algorithms import quantum_phase_estimation
from repro.backends import FakeAlmaden, FakeMelbourne, FakeRochester
from repro.simulators import NoiseModel, NoisySimulator, success_rate

from .common import FULL, run_once

SHOTS = 4096 if FULL else 1024
CORRECT = "111"


def transpiled_qpe(config, backend, seed=0):
    from repro.circuit import remove_idle_qubits

    wide = run_once(config, quantum_phase_estimation(3), backend, seed=seed)
    compact, _ = remove_idle_qubits(wide)
    return compact


def measure_success(circuit, backend, seed=7, shots=SHOTS):
    simulator = NoisySimulator(NoiseModel.from_backend(backend), seed=seed)
    return success_rate(simulator.run(circuit, shots=shots), CORRECT)


@pytest.mark.parametrize(
    "backend_factory", [FakeMelbourne, FakeAlmaden, FakeRochester],
    ids=["melbourne", "almaden", "rochester"],
)
@pytest.mark.parametrize("config", ["level3", "rpo"])
def test_fig11(benchmark, backend_factory, config):
    backend = backend_factory()
    circuit = transpiled_qpe(config, backend)
    rate = benchmark.pedantic(
        measure_success, args=(circuit, backend), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "backend": backend.name,
            "config": config,
            "success_rate": round(rate, 4),
            "cx": circuit.count_ops().get("cx", 0),
        }
    )


@pytest.mark.parametrize(
    "backend_factory", [FakeMelbourne, FakeAlmaden, FakeRochester],
    ids=["melbourne", "almaden", "rochester"],
)
def test_rpo_improves_success_rate(backend_factory):
    backend = backend_factory()
    baseline = transpiled_qpe("level3", backend)
    optimized = transpiled_qpe("rpo", backend)
    assert optimized.count_ops().get("cx", 0) <= baseline.count_ops().get("cx", 0)
    rate_baseline = measure_success(baseline, backend)
    rate_optimized = measure_success(optimized, backend)
    assert rate_optimized >= rate_baseline
