"""Figure 10 / Sec. VIII-A: the Bernstein-Vazirani case study.

QBO converts the boolean (CNOT) oracle into the phase (Z) oracle: after RPO
the boolean design costs exactly as much as the hand-written phase design
(zero CNOTs), while level 3 cannot remove the oracle CNOTs.
"""

import pytest

from repro.algorithms import bernstein_vazirani_boolean, bernstein_vazirani_phase
from repro.backends import FakeMelbourne

from .common import FULL, run_once, transpile_stats

SIZES = [4, 6, 8, 10] if FULL else [4, 6]
SECRET = {4: 0b1011, 6: 0b110101, 8: 0b10110101, 10: 0b1011010110}


@pytest.fixture(scope="module")
def melbourne():
    return FakeMelbourne()


@pytest.mark.parametrize("design", ["boolean", "phase"])
@pytest.mark.parametrize("config", ["level3", "rpo"])
@pytest.mark.parametrize("num_qubits", SIZES)
def test_fig10(benchmark, melbourne, design, config, num_qubits):
    builder = (
        bernstein_vazirani_boolean if design == "boolean" else bernstein_vazirani_phase
    )
    circuit = builder(num_qubits, SECRET[num_qubits])
    benchmark.pedantic(
        run_once, args=(config, circuit, melbourne), rounds=2, iterations=1
    )
    stats = transpile_stats(config, circuit, melbourne)
    benchmark.extra_info.update(
        {"design": design, "qubits": num_qubits, "config": config, **stats}
    )


def test_boolean_oracle_matches_phase_oracle_under_rpo(melbourne):
    for num_qubits in SIZES:
        boolean = bernstein_vazirani_boolean(num_qubits, SECRET[num_qubits])
        phase = bernstein_vazirani_phase(num_qubits, SECRET[num_qubits])
        rpo_boolean = transpile_stats("rpo", boolean, melbourne)["cx"]
        rpo_phase = transpile_stats("rpo", phase, melbourne)["cx"]
        level3_boolean = transpile_stats("level3", boolean, melbourne)["cx"]
        assert rpo_boolean == rpo_phase == 0
        assert level3_boolean > 0
