#!/usr/bin/env python3
"""Loopback shoot-out for the networked compile server.

Boots a :class:`~repro.server.CompileServer` on an ephemeral loopback
port and measures three ways of pushing one batch of cheap circuits
through the same compile stack:

1. **in-process service** -- the batch straight into the server's own
   :class:`~repro.transpiler.CompileService` flavour, no wire.  This is
   the throughput ceiling the remote paths are judged against.
2. **remote, one request per circuit** (``chunk_size=1``) -- the naive
   wire client, paying HTTP dispatch + one envelope per circuit.
3. **remote, chunked envelopes** (``chunk_size="auto"``) -- the shipped
   default: a handful of requests for the whole batch.

The acceptance claims, gated in CI (``--assert-chunked-speedup`` here,
``check_regression.py --server`` on the emitted JSON):

* chunked dispatch beats one-request-per-circuit on a big cheap-circuit
  batch (per-request overhead dominates exactly there), and
* loopback-remote chunked throughput stays within 2x of the in-process
  service (the wire tax is bounded).

A final (informative, ungated) section fans the batch across two
loopback shards through a :class:`~repro.server.ShardRouter` and prints
the affinity routing table.

Usage::

    python benchmarks/bench_server.py [--quick] [--circuits N]
                                      [--assert-chunked-speedup]
                                      [--metrics-json PATH]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro.algorithms import ry_ansatz
from repro.server import CompileServer, RemoteCompileService, ShardRouter
from repro.transpiler import Target

from common import print_table


def build_batch(num_circuits: int):
    """Cheap, narrow circuits: per-job work is small, so dispatch
    overhead -- the thing this benchmark measures -- dominates."""
    circuits = [
        ry_ansatz(3, depth=2, seed=index) for index in range(num_circuits)
    ]
    return circuits, list(range(num_circuits))


def assert_identical(reference, candidates, label):
    for index, (expected, got) in enumerate(zip(reference, candidates)):
        same = len(expected.data) == len(got.data) and all(
            a.operation.name == b.operation.name and a.qubits == b.qubits
            for a, b in zip(expected.data, got.data)
        )
        if not same:
            raise SystemExit(
                f"remote parity violated: circuit {index} differs under {label!r}"
            )


def measure_inprocess(server, circuits, seeds, target):
    start = time.perf_counter()
    results = server.service.map(
        [c.copy() for c in circuits], targets=target, seeds=seeds
    )
    return time.perf_counter() - start, [r.circuit for r in results]


def measure_remote(endpoint, circuits, seeds, target, chunk_size):
    with RemoteCompileService(endpoint) as remote:
        start = time.perf_counter()
        results = remote.map(
            [c.copy() for c in circuits],
            targets=target,
            seeds=seeds,
            chunk_size=chunk_size,
        )
        wall = time.perf_counter() - start
        requests = remote._requests
    return wall, [r.circuit for r in results], requests


def measure_sharded(circuits, seeds, target, pipeline):
    """Two loopback shards, one router; informative only."""
    with CompileServer(mode="serial", pipeline=pipeline) as s1, CompileServer(
        mode="serial", pipeline=pipeline
    ) as s2:
        s1.start()
        s2.start()
        targets = [
            target if index % 2 == 0 else Target.preset("linear:3")
            for index in range(len(circuits))
        ]
        with ShardRouter([s1.endpoint, s2.endpoint]) as router:
            start = time.perf_counter()
            router.map(
                [c.copy() for c in circuits],
                targets=targets,
                seeds=seeds,
            )
            wall = time.perf_counter() - start
            stats = router.stats()
    return wall, stats


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--circuits",
        type=int,
        default=200,
        help="batch size (default 200; the chunking win needs a big batch "
        "of cheap circuits)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="60-circuit batch for CI"
    )
    parser.add_argument(
        "--pipeline", default="level1", help="pipeline (default: level1 -- cheap)"
    )
    parser.add_argument(
        "--mode",
        default="serial",
        help="server service mode (default: serial, isolating wire overhead)",
    )
    parser.add_argument(
        "--assert-chunked-speedup",
        action="store_true",
        help="fail unless chunked dispatch beats one-request-per-circuit",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="write wall times + request counts to PATH as JSON "
        "(check_regression.py --server gates on it)",
    )
    args = parser.parse_args(argv)

    num_circuits = 60 if args.quick else args.circuits
    circuits, seeds = build_batch(num_circuits)
    target = Target.preset("linear:3")
    print(
        f"batch: {num_circuits} cheap circuits, pipeline={args.pipeline!r}, "
        f"server mode={args.mode!r}"
    )

    with CompileServer(mode=args.mode, pipeline=args.pipeline) as server:
        server.start()
        print(f"loopback server on {server.endpoint}")

        inproc_wall, reference = measure_inprocess(server, circuits, seeds, target)

        def remote_pair():
            per_wall, per_out, per_requests = measure_remote(
                server.endpoint, circuits, seeds, target, chunk_size=1
            )
            chunk_wall, chunk_out, chunk_requests = measure_remote(
                server.endpoint, circuits, seeds, target, chunk_size="auto"
            )
            return (per_wall, per_out, per_requests), (
                chunk_wall,
                chunk_out,
                chunk_requests,
            )

        per_circuit, chunked = remote_pair()
        if args.assert_chunked_speedup and chunked[0] >= per_circuit[0]:
            # loopback timings flap on shared runners: best-of-two
            print("chunked did not win the first run; re-measuring")
            per_rerun, chunk_rerun = remote_pair()
            per_circuit = min(per_circuit, per_rerun, key=lambda t: t[0])
            chunked = min(chunked, chunk_rerun, key=lambda t: t[0])
        per_wall, per_out, per_requests = per_circuit
        chunk_wall, chunk_out, chunk_requests = chunked

        assert_identical(reference, per_out, "remote per-circuit")
        assert_identical(reference, chunk_out, "remote chunked")
        print("parity: remote results identical to in-process service")

        health = server.health()
        print(f"healthz: {health['status']}, jobs completed: {health['jobs_completed']}")

    print_table(
        "Loopback dispatch shoot-out",
        ["strategy", "wall", "throughput", "requests"],
        [
            [
                "in-process service",
                f"{inproc_wall:.2f}s",
                f"{num_circuits / inproc_wall:.1f}/s",
                "-",
            ],
            [
                "remote, 1 req/circuit",
                f"{per_wall:.2f}s",
                f"{num_circuits / per_wall:.1f}/s",
                per_requests,
            ],
            [
                "remote, chunked",
                f"{chunk_wall:.2f}s",
                f"{num_circuits / chunk_wall:.1f}/s",
                chunk_requests,
            ],
        ],
    )

    shard_wall, shard_stats = measure_sharded(
        circuits[: max(10, num_circuits // 5)],
        seeds[: max(10, num_circuits // 5)],
        target,
        args.pipeline,
    )
    print(
        f"sharded ({shard_stats['num_shards']} loopback shards): "
        f"{shard_wall:.2f}s, affinity: {shard_stats['affinity']}"
    )

    if args.metrics_json:
        from repro.transpiler import write_metrics_json

        write_metrics_json(
            args.metrics_json,
            {
                "suite": "server",
                "num_circuits": num_circuits,
                "pipeline": args.pipeline,
                "mode": args.mode,
                "wall_times": {
                    "inprocess": inproc_wall,
                    "remote_per_circuit": per_wall,
                    "remote_chunked": chunk_wall,
                },
                "requests": {
                    "per_circuit": per_requests,
                    "chunked": chunk_requests,
                },
            },
        )
        print(f"metrics written to {args.metrics_json}")

    if args.assert_chunked_speedup:
        if chunk_wall >= per_wall:
            raise SystemExit(
                f"chunked dispatch ({chunk_wall:.2f}s) did not beat "
                f"one-request-per-circuit ({per_wall:.2f}s) on "
                f"{num_circuits} circuits"
            )
        print(f"chunked beats per-circuit dispatch: {per_wall / chunk_wall:.2f}x")


if __name__ == "__main__":
    main()
