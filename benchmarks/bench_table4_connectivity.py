"""Table IV: QPE across backend connectivities (paper Sec. VIII-D).

Expected shape: the worse the connectivity, the more routing SWAPs, the
larger RPO's absolute CNOT savings (paper: 18.0%/15.2%/20.6% reductions on
melbourne/almaden/rochester).
"""

import pytest

from repro.algorithms import quantum_phase_estimation

from .common import BACKENDS, FULL, run_once, transpile_stats

SIZES = [4, 6, 8, 10, 12, 14] if FULL else [4, 6, 8]


@pytest.fixture(scope="module", params=["almaden", "rochester"])
def backend(request):
    return BACKENDS[request.param]()


@pytest.mark.parametrize("config", ["level3", "rpo"])
@pytest.mark.parametrize("num_qubits", SIZES)
def test_table4(benchmark, backend, num_qubits, config):
    circuit = quantum_phase_estimation(num_qubits - 1)
    benchmark.pedantic(
        run_once, args=(config, circuit, backend), rounds=2, iterations=1
    )
    stats = transpile_stats(config, circuit, backend)
    benchmark.extra_info.update(
        {"backend": backend.name, "qubits": num_qubits, "config": config, **stats}
    )


def test_rpo_wins_on_every_backend():
    for name, factory in BACKENDS.items():
        backend = factory()
        circuit = quantum_phase_estimation(5)
        level3 = transpile_stats("level3", circuit, backend)["cx"]
        rpo = transpile_stats("rpo", circuit, backend)["cx"]
        assert rpo < level3, f"RPO should reduce CNOTs on {name}"
