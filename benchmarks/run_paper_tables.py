#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Prints paper-formatted rows for Tables II, III, IV, V and the numbers
behind Figures 10 and 11.  Fast sizes by default; pass ``--full`` for
paper-scale sizes (4-14 qubits, 25 seeds -- takes a while).

Usage::

    python benchmarks/run_paper_tables.py [--full] [--tables 2,3,4,5,10,11]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from repro.algorithms import (
    bernstein_vazirani_boolean,
    bernstein_vazirani_phase,
    grover_circuit,
    quantum_phase_estimation,
    quantum_volume_circuit,
    ry_ansatz,
)
from repro.simulators import NoiseModel, NoisySimulator, success_rate

import common
from common import BACKENDS, print_table, run_once, transpile_stats


def make_workload(name, num_qubits):
    return {
        "qpe": lambda: quantum_phase_estimation(num_qubits - 1),
        "vqe": lambda: ry_ansatz(num_qubits, depth=3, seed=11),
        "qv": lambda: quantum_volume_circuit(num_qubits, seed=5),
        "grover": lambda: grover_circuit(num_qubits, design="noancilla"),
    }[name]()


def table2(sizes, seeds):
    backend = BACKENDS["melbourne"]()
    rows = []
    for workload in ("qpe", "vqe", "qv", "grover"):
        for n in sizes:
            if workload == "grover" and n > 10:
                continue  # gray-code oracles grow exponentially
            circuit = make_workload(workload, n)
            cells = [workload, n]
            for config in ("level3", "hoare", "rpo"):
                stats = transpile_stats(config, circuit, backend, seeds)
                cells += [stats["cx"], f"{stats['time']:.2f}s"]
            rows.append(cells)
    print_table(
        "Table II: CNOT count and transpile time (FakeMelbourne)",
        ["bench", "n", "L3 cx", "L3 t", "hoare cx", "hoare t", "RPO cx", "RPO t"],
        rows,
    )


def table3(seeds, full):
    backend = BACKENDS["melbourne"]()
    num_qubits = 8 if full else 6
    iterations = [2, 4, 6, 8, 10, 12, 14] if full else [2, 4, 6]
    rows = []
    for iters in iterations:
        plain = grover_circuit(num_qubits, iterations=iters, design="vchain")
        annotated = grover_circuit(
            num_qubits, iterations=iters, design="vchain", annotate=True
        )
        level3 = transpile_stats("level3", plain, backend, seeds)
        rpo = transpile_stats("rpo", plain, backend, seeds)
        rpo_annot = transpile_stats("rpo", annotated, backend, seeds)
        rows.append(
            [iters, level3["cx"], rpo["cx"], rpo_annot["cx"],
             level3["depth"], rpo["depth"], rpo_annot["depth"],
             f"{level3['time']:.2f}", f"{rpo['time']:.2f}", f"{rpo_annot['time']:.2f}"]
        )
    print_table(
        f"Table III: {num_qubits}-qubit Grover w/ clean-ancilla V-chain (FakeMelbourne)",
        ["iters", "L3 cx", "RPO cx", "RPO+annot cx",
         "L3 depth", "RPO depth", "RPO+annot depth", "L3 t", "RPO t", "annot t"],
        rows,
    )


def table4(sizes, seeds):
    rows = []
    for backend_name in ("almaden", "rochester"):
        backend = BACKENDS[backend_name]()
        for n in sizes:
            circuit = quantum_phase_estimation(n - 1)
            level3 = transpile_stats("level3", circuit, backend, seeds)
            rpo = transpile_stats("rpo", circuit, backend, seeds)
            rows.append(
                [backend_name, n, level3["cx"], f"{level3['time']:.2f}s",
                 rpo["cx"], f"{rpo['time']:.2f}s"]
            )
    print_table(
        "Table IV: QPE across backend connectivities",
        ["backend", "n", "L3 cx", "L3 t", "RPO cx", "RPO t"],
        rows,
    )


def table5(sizes, seeds):
    backend = BACKENDS["melbourne"]()
    rows = []
    for workload in ("qpe", "vqe", "qv", "grover"):
        for n in sizes:
            if workload == "grover" and n > 10:
                continue
            circuit = make_workload(workload, n)
            cells = [workload, n]
            for config in ("level3", "hoare", "rpo"):
                stats = transpile_stats(config, circuit, backend, seeds)
                cells += [stats["1q"], stats["depth"]]
            rows.append(cells)
    print_table(
        "Table V: single-qubit gate count and depth (FakeMelbourne)",
        ["bench", "n", "L3 1q", "L3 d", "hoare 1q", "hoare d", "RPO 1q", "RPO d"],
        rows,
    )


def figure10(seeds):
    backend = BACKENDS["melbourne"]()
    rows = []
    for n, secret in [(4, 0b1011), (6, 0b110101), (8, 0b10110101)]:
        boolean = bernstein_vazirani_boolean(n, secret)
        phase = bernstein_vazirani_phase(n, secret)
        rows.append(
            [n,
             transpile_stats("level3", boolean, backend, seeds)["cx"],
             transpile_stats("rpo", boolean, backend, seeds)["cx"],
             transpile_stats("level3", phase, backend, seeds)["cx"]]
        )
    print_table(
        "Figure 10: Bernstein-Vazirani boolean vs phase oracle",
        ["n", "boolean L3 cx", "boolean RPO cx", "phase-design cx"],
        rows,
    )


def figure11(shots):
    rows = []
    for name in ("melbourne", "almaden", "rochester"):
        backend = BACKENDS[name]()
        from repro.circuit import remove_idle_qubits

        circuits = {
            config: remove_idle_qubits(
                run_once(config, quantum_phase_estimation(3), backend)
            )[0]
            for config in ("level3", "rpo")
        }
        simulator = NoisySimulator(NoiseModel.from_backend(backend), seed=7)
        rates, cx = {}, {}
        for config, circuit in circuits.items():
            counts = simulator.run(circuit, shots=shots)
            rates[config] = success_rate(counts, "111")
            cx[config] = circuit.count_ops().get("cx", 0)
        improvement = rates["rpo"] / max(rates["level3"], 1e-9)
        rows.append(
            [name, cx["level3"], cx["rpo"],
             f"{rates['level3']:.3f}", f"{rates['rpo']:.3f}", f"{improvement:.2f}x"]
        )
    print_table(
        "Figure 11: 3-qubit QPE success rate under device noise",
        ["backend", "L3 cx", "RPO cx", "L3 success", "RPO success", "improvement"],
        rows,
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale sizes")
    parser.add_argument("--tables", default="2,3,4,5,10,11")
    args = parser.parse_args()

    if args.full:
        common.FULL = True
    sizes = [4, 6, 8, 10, 12, 14] if args.full else [4, 6, 8]
    seeds = 25 if args.full else 5
    shots = 4096 if args.full else 2048
    wanted = set(args.tables.split(","))

    if "2" in wanted:
        table2(sizes, seeds)
    if "3" in wanted:
        table3(seeds, args.full)
    if "4" in wanted:
        table4(sizes, seeds)
    if "5" in wanted:
        table5(sizes, seeds)
    if "10" in wanted:
        figure10(seeds)
    if "11" in wanted:
        figure11(shots)


if __name__ == "__main__":
    main()
