"""Ablation benchmarks for the design choices DESIGN.md calls out.

A1 -- pass composition: QBO-only vs QPO-only vs both vs the extended mode
      (general eigenphases + Sec. V-D blocks).
A2 -- early-QBO placement: the paper claims the *early* QBO (Fig. 8 line 1)
      cascades into faster transpilation; compare against a variant that
      only runs QBO after routing.
A3 -- rewrite-rule micro-costs: CNOT cost of each SWAP-family rewrite.
"""

import pytest

from repro.algorithms import bernstein_vazirani_boolean, quantum_phase_estimation
from repro.backends import FakeMelbourne
from repro.rpo import QBOPass, QPOPass
from repro.transpiler.passmanager import DoWhileController, PassManager, PropertySet
from repro.transpiler.passes import (
    ApplyLayout,
    CommutativeCancellation,
    ConsolidateBlocks,
    CXCancellation,
    DenseLayout,
    FixedPoint,
    IBM_BASIS,
    Optimize1qGates,
    RemoveAnnotations,
    RemoveDiagonalGatesBeforeMeasure,
    Size,
    StochasticSwap,
    Unroller,
)

try:
    from .common import print_table
except ImportError:  # executed as a script: benchmarks/ is on sys.path
    from common import print_table


def custom_pipeline(backend, seed=0, qbo_early=False, qbo_late=False, qpo=False,
                    qpo_blocks=False, general=False):
    basis = tuple(IBM_BASIS)
    pm = PassManager()
    if qbo_early:
        pm.append(QBOPass(general_eigenphase=general))
    pm.append(Unroller(basis))
    pm.append(DenseLayout(backend.coupling_map, backend.properties))
    pm.append(ApplyLayout(backend.coupling_map))
    pm.append(StochasticSwap(backend.coupling_map, trials=8, seed=seed))
    if qbo_late:
        pm.append(QBOPass(general_eigenphase=general))
    pm.append(Unroller(basis + ("swap", "swapz")))
    pm.append(Optimize1qGates())
    if qpo:
        pm.append(QPOPass(optimize_blocks=qpo_blocks))
    pm.append(Unroller(basis))
    pm.append(Optimize1qGates())
    pm.append(
        DoWhileController(
            [ConsolidateBlocks(), Unroller(basis), Optimize1qGates(),
             CommutativeCancellation(), CXCancellation(), Size(), FixedPoint("size")],
            do_while=lambda ps: not ps.get("size_fixed_point", False),
            max_iterations=10,
        )
    )
    pm.append(RemoveDiagonalGatesBeforeMeasure())
    pm.append(RemoveAnnotations())
    return pm


VARIANTS = {
    "baseline": {},
    "qbo_only": dict(qbo_early=True, qbo_late=True),
    "qpo_only": dict(qpo=True),
    "qbo+qpo": dict(qbo_early=True, qbo_late=True, qpo=True),
    "extended": dict(qbo_early=True, qbo_late=True, qpo=True, qpo_blocks=True,
                     general=True),
}


@pytest.fixture(scope="module")
def melbourne():
    return FakeMelbourne()


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_a1_pass_composition(benchmark, melbourne, variant):
    circuit = quantum_phase_estimation(5)

    def run():
        pm = custom_pipeline(melbourne, **VARIANTS[variant])
        return pm.run(circuit.copy(), PropertySet())

    out = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info.update(
        {"variant": variant, "cx": out.count_ops().get("cx", 0)}
    )


def test_a1_ordering(melbourne):
    """Each ingredient helps; the combination is at least as good as parts."""
    circuit = quantum_phase_estimation(5)

    def cx_for(variant):
        pm = custom_pipeline(melbourne, **VARIANTS[variant])
        return pm.run(circuit.copy(), PropertySet()).count_ops().get("cx", 0)

    baseline = cx_for("baseline")
    qbo = cx_for("qbo_only")
    both = cx_for("qbo+qpo")
    extended = cx_for("extended")
    assert qbo <= baseline
    assert both <= qbo
    assert extended <= both


@pytest.mark.parametrize("placement", ["early+late", "late_only"])
def test_a2_early_qbo_placement(benchmark, melbourne, placement):
    """Early QBO shrinks the circuit before layout/routing: the paper's
    explanation for RPO's *lower* transpile time (Sec. VIII-B)."""
    circuit = bernstein_vazirani_boolean(8, 0b10110101)
    kwargs = (
        dict(qbo_early=True, qbo_late=True, qpo=True)
        if placement == "early+late"
        else dict(qbo_early=False, qbo_late=True, qpo=True)
    )

    def run():
        pm = custom_pipeline(melbourne, **kwargs)
        return pm.run(circuit.copy(), PropertySet())

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info.update(
        {"placement": placement, "cx": out.count_ops().get("cx", 0)}
    )


def test_a3_swap_rewrite_costs():
    """Micro-costs of the SWAP-family rewrites (paper Eqs. 2-6)."""
    from repro.circuit import QuantumCircuit
    from repro.transpiler.passes import Unroller
    from repro.rpo import QBOPass

    def cx_cost(circuit):
        unrolled = Unroller().run(circuit, PropertySet())
        return unrolled.count_ops().get("cx", 0)

    # plain SWAP on unknown states: 3 CNOTs
    unknown = QuantumCircuit(4)
    unknown.h(0), unknown.cx(0, 2), unknown.h(1), unknown.cx(1, 3)
    unknown.swap(0, 1)
    assert cx_cost(QBOPass().run(unknown, PropertySet())) == 2 + 3

    # SWAP with a |0> input: SWAPZ, 2 CNOTs (Eq. 4)
    one_zero = QuantumCircuit(3)
    one_zero.h(1), one_zero.cx(1, 2)
    one_zero.swap(0, 1)
    assert cx_cost(QBOPass().run(one_zero, PropertySet())) == 1 + 2

    # SWAP with both basis states known: 0 CNOTs (Eq. 6 / Table VI)
    both = QuantumCircuit(2)
    both.h(0)
    both.x(1)
    both.swap(0, 1)
    assert cx_cost(QBOPass().run(both, PropertySet())) == 0


def main(argv=None):
    """Script entry point: run the A1 pass-composition ablation once per
    variant; ``--quick`` shrinks the workload and ``--metrics-json PATH``
    writes per-variant gate counts, times and per-pass aggregates."""
    import argparse

    from repro.transpiler import aggregate_batch, write_metrics_json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller QPE workload")
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="write the per-variant ablation report to PATH as JSON",
    )
    args = parser.parse_args(argv)

    backend = FakeMelbourne()
    circuit = quantum_phase_estimation(4 if args.quick else 5)
    rows = []
    variants = {}
    for variant in sorted(VARIANTS):
        pm = custom_pipeline(backend, **VARIANTS[variant])
        result = pm.run_with_result(circuit.copy(), PropertySet())
        ops = result.circuit.count_ops()
        rows.append(
            [
                variant,
                ops.get("cx", 0),
                result.circuit.depth(),
                f"{result.time * 1000:.1f}ms",
            ]
        )
        variants[variant] = aggregate_batch([result])
    print_table("A1: pass composition", ["variant", "cx", "depth", "time"], rows)

    if args.metrics_json:
        write_metrics_json(
            args.metrics_json,
            {"suite": "ablations_a1", "quick": args.quick, "variants": variants},
        )
        print(f"\nmetrics written to {args.metrics_json}")


if __name__ == "__main__":
    main()
